#include "nn/gradcheck.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "util/rng.hpp"

namespace ckat::nn {

void GradCheckResult::merge(const GradCheckResult& other) {
  checked += other.checked;
  skipped += other.skipped;
  if (other.max_rel_error > max_rel_error) {
    max_rel_error = other.max_rel_error;
    worst = other.worst;
  }
  passed = passed && other.passed;
}

namespace {

// Cotangent entries have magnitude in [0.25, 1] with random sign: no
// output coordinate is washed out of the functional, none dominates it.
Tensor make_cotangent(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Tensor c(rows, cols);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const float mag = 0.25f + 0.75f * rng.uniform_float();
    c.data()[i] = rng.bernoulli(0.5) ? mag : -mag;
  }
  return c;
}

// L = sum c .* y, accumulated in double (the fp64 probe).
double functional(const Tensor& y, const Tensor& c) {
  double acc = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    acc += static_cast<double>(c.data()[i]) * y.data()[i];
  }
  return acc;
}

// One differentiable tensor the checker perturbs: a name for messages, a
// pointer to the live storage the forward pass reads, and the analytic
// gradient captured from the backward pass.
struct Slot {
  std::string name;
  Tensor* value = nullptr;
  Tensor analytic;
};

// Five-point central-difference stencil around the current value of one
// coordinate; `eval` re-runs the whole forward pass.
double stencil(float* x, float h, const std::function<double()>& eval) {
  const float x0 = *x;
  *x = x0 + h;
  const double fp1 = eval();
  *x = x0 - h;
  const double fm1 = eval();
  *x = x0 + 2.0f * h;
  const double fp2 = eval();
  *x = x0 - 2.0f * h;
  const double fm2 = eval();
  *x = x0;
  return (8.0 * (fp1 - fm1) - (fp2 - fm2)) / (12.0 * static_cast<double>(h));
}

GradCheckResult run_check(std::vector<Slot>& slots,
                          const std::function<double()>& eval,
                          const GradCheckConfig& config) {
  GradCheckResult result;
  for (Slot& slot : slots) {
    for (std::size_t r = 0; r < slot.value->rows(); ++r) {
      for (std::size_t c = 0; c < slot.value->cols(); ++c) {
        float* x = &(*slot.value)(r, c);
        // Snap the per-coordinate step to a power of two so x +- h and
        // x +- 2h round identically and the stencil spacing is exact.
        const float scaled =
            config.step * std::max(1.0f, std::fabs(*x));
        const float h = std::exp2(std::round(std::log2(scaled)));
        const double numeric = stencil(x, h, eval);
        const double half = stencil(x, 0.5f * h, eval);
        const double analytic = slot.analytic(r, c);
        const double denom = std::max(
            {std::fabs(analytic), std::fabs(numeric), config.denom_floor});
        // Richardson consistency: if halving the step moves the estimate
        // materially, the stencil straddles a kink (relu corner, clamp
        // boundary) and no finite difference is meaningful here.
        if (std::fabs(numeric - half) >
            config.kink_factor * config.tolerance * denom) {
          ++result.skipped;
          continue;
        }
        ++result.checked;
        const double rel = std::fabs(analytic - numeric) / denom;
        if (rel > result.max_rel_error) {
          result.max_rel_error = rel;
          char buf[192];
          std::snprintf(buf, sizeof(buf),
                        "%s(%zu,%zu): analytic=%.8g numeric=%.8g rel=%.3g",
                        slot.name.c_str(), r, c, analytic, numeric, rel);
          result.worst = buf;
        }
        if (rel > config.tolerance) result.passed = false;
      }
    }
  }
  return result;
}

}  // namespace

GradCheckResult check_gradients(
    const std::vector<Tensor>& inputs,
    const std::function<Var(Tape&, const std::vector<Var>&)>& build,
    const GradCheckConfig& config) {
  // Working copies: the stencil perturbs these in place.
  std::vector<Tensor> work = inputs;

  // Analytic pass to learn the output shape and capture gradients.
  Tensor cotangent;
  std::vector<Slot> slots(work.size());
  {
    Tape tape;
    std::vector<Var> leaves;
    leaves.reserve(work.size());
    for (const Tensor& t : work) leaves.push_back(tape.input(t));
    const Var out = build(tape, leaves);
    util::Rng rng(config.seed);
    cotangent =
        make_cotangent(tape.value(out).rows(), tape.value(out).cols(), rng);
    tape.backward_seeded(out, cotangent);
    for (std::size_t i = 0; i < work.size(); ++i) {
      slots[i].name = "input" + std::to_string(i);
      slots[i].value = &work[i];
      // An input that does not influence the output never gets a grad
      // tensor allocated; its analytic gradient is identically zero.
      try {
        slots[i].analytic = tape.grad(leaves[i]);
      } catch (const std::logic_error&) {
        slots[i].analytic.resize_zeroed(work[i].rows(), work[i].cols());
      }
    }
  }

  const auto eval = [&]() {
    Tape tape;
    std::vector<Var> leaves;
    leaves.reserve(work.size());
    for (const Tensor& t : work) leaves.push_back(tape.input(t));
    const Var out = build(tape, leaves);
    return functional(tape.value(out), cotangent);
  };
  return run_check(slots, eval, config);
}

GradCheckResult check_parameter_gradients(
    const std::vector<Parameter*>& params,
    const std::function<Var(Tape&)>& build,
    const GradCheckConfig& config) {
  Tensor cotangent;
  std::vector<Slot> slots(params.size());
  {
    for (Parameter* p : params) p->zero_grad();
    Tape tape;
    const Var out = build(tape);
    util::Rng rng(config.seed);
    cotangent =
        make_cotangent(tape.value(out).rows(), tape.value(out).cols(), rng);
    tape.backward_seeded(out, cotangent);
    for (std::size_t i = 0; i < params.size(); ++i) {
      slots[i].name = params[i]->name();
      slots[i].value = &params[i]->value();
      slots[i].analytic = params[i]->grad();
    }
    // Leave the parameters' gradient state as we found it.
    for (Parameter* p : params) p->zero_grad();
  }

  const auto eval = [&]() {
    Tape tape;
    const Var out = build(tape);
    return functional(tape.value(out), cotangent);
  };
  return run_check(slots, eval, config);
}

}  // namespace ckat::nn
