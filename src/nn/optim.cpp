#include "nn/optim.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/parallel.hpp"

namespace ckat::nn {

void SgdOptimizer::step(ParamStore& params) {
  for (auto& p : params) {
    if (!p->has_any_grad()) continue;
    if (p->has_dense_grad()) {
      float* v = p->value().data();
      const float* g = p->grad().data();
      for (std::size_t i = 0; i < p->value().size(); ++i) {
        v[i] -= lr_ * g[i];
      }
    } else {
      for (std::uint32_t r : p->touched_rows()) {
        auto vrow = p->value().row(r);
        auto grow = p->grad().row(r);
        for (std::size_t c = 0; c < vrow.size(); ++c) {
          vrow[c] -= lr_ * grow[c];
        }
      }
    }
    p->zero_grad();
  }
}

void AdamOptimizer::update_row(Parameter& p, std::size_t row,
                               float bias_correction1,
                               float bias_correction2) {
  auto vrow = p.value().row(row);
  auto grow = p.grad().row(row);
  auto mrow = p.opt_m.row(row);
  auto v2row = p.opt_v.row(row);
  for (std::size_t c = 0; c < vrow.size(); ++c) {
    const float g = grow[c];
    mrow[c] = beta1_ * mrow[c] + (1.0f - beta1_) * g;
    v2row[c] = beta2_ * v2row[c] + (1.0f - beta2_) * g * g;
    const float m_hat = mrow[c] / bias_correction1;
    const float v_hat = v2row[c] / bias_correction2;
    vrow[c] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

void AdamOptimizer::step(ParamStore& params) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (auto& p : params) {
    if (!p->has_any_grad()) continue;
    if (p->opt_m.empty()) {
      p->opt_m.resize_zeroed(p->rows(), p->cols());
      p->opt_v.resize_zeroed(p->rows(), p->cols());
    }
    if (p->has_dense_grad()) {
      for (std::size_t r = 0; r < p->rows(); ++r) {
        update_row(*p, r, bc1, bc2);
      }
    } else {
      for (std::uint32_t r : p->touched_rows()) {
        update_row(*p, r, bc1, bc2);
      }
    }
    p->zero_grad();
  }
}

void AdamOptimizer::step(ParamStore& params, util::WorkerPool& pool) {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));

  // Deterministic work list: parameters in creation order, rows in
  // dense or touch order. Built serially so moment buffers are
  // allocated before any worker runs.
  std::vector<std::pair<Parameter*, std::uint32_t>> work;
  for (auto& p : params) {
    if (!p->has_any_grad()) continue;
    if (p->opt_m.empty()) {
      p->opt_m.resize_zeroed(p->rows(), p->cols());
      p->opt_v.resize_zeroed(p->rows(), p->cols());
    }
    if (p->has_dense_grad()) {
      for (std::size_t r = 0; r < p->rows(); ++r) {
        work.emplace_back(p.get(), static_cast<std::uint32_t>(r));
      }
    } else {
      for (std::uint32_t r : p->touched_rows()) {
        work.emplace_back(p.get(), r);
      }
    }
  }

  // Contiguous shards: each (param, row) is updated by exactly one
  // worker and rows never share state, so scheduling cannot change any
  // result bit.
  const std::size_t workers = pool.size();
  const std::size_t chunk = (work.size() + workers - 1) / workers;
  pool.run([&](std::size_t w) {
    const std::size_t begin = w * chunk;
    const std::size_t end = std::min(work.size(), begin + chunk);
    for (std::size_t i = begin; i < end; ++i) {
      update_row(*work[i].first, work[i].second, bc1, bc2);
    }
  });

  for (auto& p : params) {
    if (p->has_any_grad()) p->zero_grad();
  }
}

}  // namespace ckat::nn
