#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace ckat::nn {

namespace {

constexpr char kMagic[8] = {'C', 'K', 'A', 'T', 'P', 'A', 'R', '1'};

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const char* context) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string("load_parameters: truncated file (") +
                             context + ")");
  }
  return value;
}

}  // namespace

void save_parameters(const ParamStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_parameters: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Parameter& p = store.at(i);
    write_pod<std::uint32_t>(out,
                             static_cast<std::uint32_t>(p.name().size()));
    out.write(p.name().data(),
              static_cast<std::streamsize>(p.name().size()));
    write_pod<std::uint64_t>(out, p.rows());
    write_pod<std::uint64_t>(out, p.cols());
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().size() * sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("save_parameters: write failed for " + path);
  }
}

void load_parameters(ParamStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_parameters: cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const auto count = read_pod<std::uint64_t>(in, "count");
  if (count != store.size()) {
    throw std::runtime_error(
        "load_parameters: parameter count mismatch (file has " +
        std::to_string(count) + ", store has " + std::to_string(store.size()) +
        ")");
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    Parameter& p = store.at(i);
    const auto name_len = read_pod<std::uint32_t>(in, "name length");
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in || name != p.name()) {
      throw std::runtime_error("load_parameters: parameter name mismatch at " +
                               std::to_string(i) + " (file '" + name +
                               "', store '" + p.name() + "')");
    }
    const auto rows = read_pod<std::uint64_t>(in, "rows");
    const auto cols = read_pod<std::uint64_t>(in, "cols");
    if (rows != p.rows() || cols != p.cols()) {
      throw std::runtime_error("load_parameters: shape mismatch for '" +
                               name + "'");
    }
    in.read(reinterpret_cast<char*>(p.value().data()),
            static_cast<std::streamsize>(p.value().size() * sizeof(float)));
    if (!in) {
      throw std::runtime_error("load_parameters: truncated values for '" +
                               name + "'");
    }
  }
}

}  // namespace ckat::nn
