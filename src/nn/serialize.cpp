#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/fault.hpp"

namespace ckat::nn {

namespace {

constexpr char kMagic[8] = {'C', 'K', 'A', 'T', 'P', 'A', 'R', '1'};
constexpr char kCkptMagic[8] = {'C', 'K', 'A', 'T', 'C', 'K', 'P', '2'};
constexpr std::uint32_t kCkptVersion = 2;

// Sanity caps applied to every length field before it is trusted. A
// corrupt 4-byte field must produce a clean error, not a multi-GB
// allocation attempt.
constexpr std::uint32_t kMaxNameLen = 4096;
constexpr std::uint64_t kMaxDim = 1ull << 32;
constexpr std::uint64_t kMaxElements = 1ull << 33;

// Serialized header: magic(8) version(4) flags(4) epoch(4) n_tensors(4)
// cf_steps(8) kg_steps(8) rng_state(32) lr_scale(4), followed by a
// u32 CRC32 of those 76 bytes.
constexpr std::size_t kCkptHeaderSize = 76;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in, const char* context) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string("truncated file (") + context + ")");
  }
  return value;
}

template <typename T>
void append_pod(std::string& buffer, const T& value) {
  buffer.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T extract_pod(const char* buffer, std::size_t offset) {
  T value;
  std::memcpy(&value, buffer + offset, sizeof(T));
  return value;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ (0xEDB88320u & (~(crc & 1u) + 1u));
      }
      t[i] = crc;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

void save_parameters(const ParamStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_parameters: cannot open " + path);
  }
  out.write(kMagic, sizeof(kMagic));
  write_pod<std::uint64_t>(out, store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Parameter& p = store.at(i);
    write_pod<std::uint32_t>(out,
                             static_cast<std::uint32_t>(p.name().size()));
    out.write(p.name().data(),
              static_cast<std::streamsize>(p.name().size()));
    write_pod<std::uint64_t>(out, p.rows());
    write_pod<std::uint64_t>(out, p.cols());
    out.write(reinterpret_cast<const char*>(p.value().data()),
              static_cast<std::streamsize>(p.value().size() * sizeof(float)));
  }
  if (!out) {
    throw std::runtime_error("save_parameters: write failed for " + path);
  }
}

void load_parameters(ParamStore& store, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_parameters: cannot open " + path);
  }
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const auto count = read_pod<std::uint64_t>(in, "count");
  if (count != store.size()) {
    throw std::runtime_error(
        "load_parameters: parameter count mismatch (file has " +
        std::to_string(count) + ", store has " + std::to_string(store.size()) +
        ")");
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    Parameter& p = store.at(i);
    const auto name_len = read_pod<std::uint32_t>(in, "name length");
    // Bounds come before any allocation: a corrupt name_len must not
    // drive a huge std::string reserve.
    if (name_len > kMaxNameLen) {
      throw std::runtime_error(
          "load_parameters: implausible name length " +
          std::to_string(name_len) + " at parameter " + std::to_string(i) +
          " (corrupt file?)");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in || name != p.name()) {
      throw std::runtime_error("load_parameters: parameter name mismatch at " +
                               std::to_string(i) + " (file '" + name +
                               "', store '" + p.name() + "')");
    }
    const auto rows = read_pod<std::uint64_t>(in, "rows");
    const auto cols = read_pod<std::uint64_t>(in, "cols");
    if (rows > kMaxDim || cols > kMaxDim || rows * cols > kMaxElements) {
      throw std::runtime_error("load_parameters: implausible shape (" +
                               std::to_string(rows) + " x " +
                               std::to_string(cols) + ") for '" + name +
                               "' (corrupt file?)");
    }
    if (rows != p.rows() || cols != p.cols()) {
      // A larger row count is the warm-start footgun: a checkpoint from
      // a grown vocabulary silently truncated into a smaller model
      // would score garbage for every remapped id. Name the counts so
      // the operator sees *which* direction the mismatch runs.
      std::string message = "load_parameters: shape mismatch for '" + name +
                            "' (file has " + std::to_string(rows) + " x " +
                            std::to_string(cols) + ", store expects " +
                            std::to_string(p.rows()) + " x " +
                            std::to_string(p.cols()) + ")";
      if (rows > p.rows()) {
        message +=
            "; the file's entity count exceeds this model's vocabulary — "
            "a checkpoint from a larger vocabulary cannot be loaded into "
            "a smaller model (use warm_start_from_checkpoint for growth)";
      }
      throw std::runtime_error(message);
    }
    in.read(reinterpret_cast<char*>(p.value().data()),
            static_cast<std::streamsize>(p.value().size() * sizeof(float)));
    if (!in) {
      throw std::runtime_error("load_parameters: truncated values for '" +
                               name + "'");
    }
  }
}

// ------------------------------------------------------------ checkpoints

void TrainingCheckpoint::capture(const ParamStore& store) {
  tensors.clear();
  tensors.reserve(store.size());
  for (std::size_t i = 0; i < store.size(); ++i) {
    const Parameter& p = store.at(i);
    TensorSnapshot snapshot;
    snapshot.name = p.name();
    snapshot.value = p.value();
    if (!p.opt_m.empty()) {
      snapshot.opt_m = p.opt_m;
      snapshot.opt_v = p.opt_v;
    }
    tensors.push_back(std::move(snapshot));
  }
}

void TrainingCheckpoint::restore(ParamStore& store) const {
  if (store.size() != tensors.size()) {
    throw std::runtime_error(
        "TrainingCheckpoint::restore: parameter count mismatch (checkpoint "
        "has " +
        std::to_string(tensors.size()) + ", store has " +
        std::to_string(store.size()) + ")");
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    const TensorSnapshot& snapshot = tensors[i];
    const Parameter& p = store.at(i);
    if (snapshot.name != p.name()) {
      throw std::runtime_error(
          "TrainingCheckpoint::restore: parameter name mismatch at " +
          std::to_string(i) + " (checkpoint '" + snapshot.name +
          "', store '" + p.name() + "')");
    }
    if (!snapshot.value.same_shape(p.value())) {
      throw std::runtime_error(
          "TrainingCheckpoint::restore: shape mismatch for '" +
          snapshot.name + "'");
    }
  }
  for (std::size_t i = 0; i < store.size(); ++i) {
    const TensorSnapshot& snapshot = tensors[i];
    Parameter& p = store.at(i);
    p.value() = snapshot.value;
    p.opt_m = snapshot.opt_m;
    p.opt_v = snapshot.opt_v;
  }
}

namespace {

void write_tensor_payload(std::ofstream& out, const Tensor& t) {
  const std::size_t bytes = t.size() * sizeof(float);
  write_pod<std::uint32_t>(out, crc32(t.data(), bytes));
  out.write(reinterpret_cast<const char*>(t.data()),
            static_cast<std::streamsize>(bytes));
}

Tensor read_tensor_payload(std::ifstream& in, std::size_t rows,
                           std::size_t cols, const std::string& name,
                           const char* what) {
  const auto stored_crc = read_pod<std::uint32_t>(
      in, ("checkpoint CRC of '" + name + "'").c_str());
  Tensor t(rows, cols);
  const std::size_t bytes = t.size() * sizeof(float);
  in.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(bytes));
  if (!in) {
    throw std::runtime_error("load_checkpoint: truncated " +
                             std::string(what) + " payload for '" + name +
                             "'");
  }
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fire(util::fault_points::kCheckpointReadBitflip) &&
      bytes > 0) {
    reinterpret_cast<unsigned char*>(t.data())[0] ^= 0x04;
  }
  if (crc32(t.data(), bytes) != stored_crc) {
    throw std::runtime_error("load_checkpoint: payload CRC mismatch for '" +
                             name + "' (" + what +
                             "): checkpoint is corrupt");
  }
  return t;
}

}  // namespace

void save_checkpoint(const TrainingCheckpoint& checkpoint,
                     const std::string& path) {
  const std::string tmp = path + ".tmp";
  auto& injector = util::FaultInjector::instance();
  try {
    {
      std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
      if (!out) {
        throw std::runtime_error("save_checkpoint: cannot open " + tmp);
      }
      std::string header;
      header.reserve(kCkptHeaderSize);
      header.append(kCkptMagic, sizeof(kCkptMagic));
      append_pod<std::uint32_t>(header, kCkptVersion);
      append_pod<std::uint32_t>(header, 0);  // flags (reserved)
      append_pod<std::int32_t>(header, checkpoint.epoch);
      append_pod<std::uint32_t>(
          header, static_cast<std::uint32_t>(checkpoint.tensors.size()));
      append_pod<std::int64_t>(header, checkpoint.cf_steps);
      append_pod<std::int64_t>(header, checkpoint.kg_steps);
      for (std::uint64_t word : checkpoint.rng_state) {
        append_pod<std::uint64_t>(header, word);
      }
      append_pod<float>(header, checkpoint.lr_scale);
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      write_pod<std::uint32_t>(out, crc32(header.data(), header.size()));

      for (const TensorSnapshot& snapshot : checkpoint.tensors) {
        if (injector.enabled() &&
            injector.should_fire(util::fault_points::kCheckpointWrite)) {
          throw std::runtime_error(
              "save_checkpoint: injected I/O failure writing " + tmp);
        }
        write_pod<std::uint32_t>(
            out, static_cast<std::uint32_t>(snapshot.name.size()));
        out.write(snapshot.name.data(),
                  static_cast<std::streamsize>(snapshot.name.size()));
        write_pod<std::uint64_t>(out, snapshot.value.rows());
        write_pod<std::uint64_t>(out, snapshot.value.cols());
        const std::uint8_t has_moments = snapshot.opt_m.empty() ? 0 : 1;
        write_pod<std::uint8_t>(out, has_moments);
        write_tensor_payload(out, snapshot.value);
        if (has_moments) {
          write_tensor_payload(out, snapshot.opt_m);
          write_tensor_payload(out, snapshot.opt_v);
        }
      }
      out.flush();
      if (!out) {
        throw std::runtime_error("save_checkpoint: write failed for " + tmp);
      }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      throw std::runtime_error("save_checkpoint: rename to " + path +
                               " failed: " + ec.message());
    }
  } catch (...) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    throw;
  }
}

TrainingCheckpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("load_checkpoint: cannot open " + path);
  }
  in.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size < kCkptHeaderSize + sizeof(std::uint32_t)) {
    throw std::runtime_error("load_checkpoint: truncated header in " + path);
  }

  char header[kCkptHeaderSize];
  in.read(header, kCkptHeaderSize);
  const auto stored_header_crc = read_pod<std::uint32_t>(in, "header CRC");
  if (std::memcmp(header, kCkptMagic, sizeof(kCkptMagic)) != 0) {
    throw std::runtime_error("load_checkpoint: bad checkpoint magic in " +
                             path);
  }
  const auto version = extract_pod<std::uint32_t>(header, 8);
  if (version != kCkptVersion) {
    throw std::runtime_error("load_checkpoint: unsupported checkpoint "
                             "version " +
                             std::to_string(version) + " in " + path);
  }
  if (crc32(header, kCkptHeaderSize) != stored_header_crc) {
    throw std::runtime_error(
        "load_checkpoint: header CRC mismatch in " + path +
        ": checkpoint header is corrupt");
  }

  TrainingCheckpoint checkpoint;
  checkpoint.epoch = extract_pod<std::int32_t>(header, 16);
  const auto n_tensors = extract_pod<std::uint32_t>(header, 20);
  checkpoint.cf_steps = extract_pod<std::int64_t>(header, 24);
  checkpoint.kg_steps = extract_pod<std::int64_t>(header, 32);
  for (std::size_t w = 0; w < 4; ++w) {
    checkpoint.rng_state[w] =
        extract_pod<std::uint64_t>(header, 40 + 8 * w);
  }
  checkpoint.lr_scale = extract_pod<float>(header, 72);

  checkpoint.tensors.reserve(n_tensors);
  for (std::uint32_t i = 0; i < n_tensors; ++i) {
    const auto name_len = read_pod<std::uint32_t>(in, "checkpoint name length");
    if (name_len > kMaxNameLen) {
      throw std::runtime_error(
          "load_checkpoint: implausible name length " +
          std::to_string(name_len) + " at tensor " + std::to_string(i) +
          " (corrupt file?)");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    if (!in) {
      throw std::runtime_error("load_checkpoint: truncated name at tensor " +
                               std::to_string(i));
    }
    const auto rows = read_pod<std::uint64_t>(in, "checkpoint rows");
    const auto cols = read_pod<std::uint64_t>(in, "checkpoint cols");
    if (rows > kMaxDim || cols > kMaxDim || rows * cols > kMaxElements) {
      throw std::runtime_error("load_checkpoint: implausible shape (" +
                               std::to_string(rows) + " x " +
                               std::to_string(cols) + ") for '" + name +
                               "' (corrupt file?)");
    }
    const auto has_moments =
        read_pod<std::uint8_t>(in, "checkpoint moment flag");
    if (has_moments > 1) {
      throw std::runtime_error(
          "load_checkpoint: corrupt moment flag for '" + name + "'");
    }
    // Validate against the bytes actually left in the file before
    // touching memory: truncation is reported up front, not as a partial
    // read halfway through a payload.
    const std::uint64_t payload_bytes = rows * cols * sizeof(float);
    const std::uint64_t payloads = 1 + (has_moments ? 2 : 0);
    const auto here = static_cast<std::uint64_t>(in.tellg());
    if (file_size - here <
        payloads * (payload_bytes + sizeof(std::uint32_t))) {
      throw std::runtime_error("load_checkpoint: truncated payload for '" +
                               name + "' (file too small)");
    }

    TensorSnapshot snapshot;
    snapshot.name = name;
    snapshot.value = read_tensor_payload(in, rows, cols, name, "value");
    if (has_moments) {
      snapshot.opt_m = read_tensor_payload(in, rows, cols, name, "opt_m");
      snapshot.opt_v = read_tensor_payload(in, rows, cols, name, "opt_v");
    }
    checkpoint.tensors.push_back(std::move(snapshot));
  }
  return checkpoint;
}

}  // namespace ckat::nn
