// Finite-difference gradient checking for the tape autograd.
//
// The harness compares analytic gradients (reverse-mode through Tape)
// against numeric directional derivatives of a random linear functional
// L(x) = sum_ij c_ij * y_ij(x), where c is a deterministic random
// cotangent and y the op output. The numeric side uses a five-point
// central-difference stencil with double-precision accumulation of L
// (the "fp64 probe"): forwards stay fp32, but every reduction the
// checker performs is carried in double so stencil cancellation noise
// stays well below the tolerance.
//
// Non-smooth ops (relu, leaky_relu, clamps) are handled by a Richardson
// consistency test: each coordinate is probed at step h and h/2, and a
// coordinate whose two stencil estimates disagree is *skipped* (counted,
// not failed) -- the perturbation straddled a kink, so no finite
// difference is meaningful there. Smooth-op mismatches still fail.
//
// Everything is deterministic: cotangents and probe order come from a
// seeded util::Rng, so a failure reproduces bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "nn/parameter.hpp"
#include "nn/tape.hpp"
#include "nn/tensor.hpp"

namespace ckat::nn {

struct GradCheckConfig {
  /// Base finite-difference step (scaled by max(1, |x|) per coordinate).
  float step = 1e-2f;
  /// Maximum allowed relative error |analytic - numeric| /
  /// max(|analytic|, |numeric|, denom_floor).
  double tolerance = 1e-4;
  /// Floor of the relative-error denominator; errors on gradients
  /// smaller than this are measured absolutely.
  double denom_floor = 1.0;
  /// A coordinate whose h and h/2 stencil estimates differ by more than
  /// kink_factor * tolerance * denominator is treated as kink-adjacent
  /// and skipped instead of failed.
  double kink_factor = 4.0;
  /// Seed for the cotangent RNG.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
};

struct GradCheckResult {
  bool passed = true;
  double max_rel_error = 0.0;
  std::size_t checked = 0;  ///< coordinates compared
  std::size_t skipped = 0;  ///< kink-adjacent coordinates excluded
  std::string worst;        ///< human-readable locus of the worst error

  /// Folds another result in (used by tests that sweep many ops).
  void merge(const GradCheckResult& other);
};

/// Checks d(sum c*y)/d(inputs) for a tape program over plain tensor
/// inputs. `build` is called repeatedly: it receives a fresh tape plus
/// one input() leaf per entry of `inputs` (values possibly perturbed)
/// and must return the output node. The builder must be deterministic --
/// any RNG it uses (e.g. dropout) must be re-seeded identically per call.
GradCheckResult check_gradients(
    const std::vector<Tensor>& inputs,
    const std::function<Var(Tape&, const std::vector<Var>&)>& build,
    const GradCheckConfig& config = {});

/// Same check, but differentiates with respect to live Parameters (for
/// module-level programs: attention, TransR, the full CKAT loss).
/// `build` closes over the parameters and records the program through
/// param()/gather_param(); the harness perturbs each parameter's value
/// in place (restoring it afterwards) for the numeric side and reads
/// Parameter::grad() for the analytic side. Gradients of all listed
/// parameters are zeroed by the harness before the analytic pass.
GradCheckResult check_parameter_gradients(
    const std::vector<Parameter*>& params,
    const std::function<Var(Tape&)>& build,
    const GradCheckConfig& config = {});

}  // namespace ckat::nn
