// Weight initializers. The paper uses the Xavier initializer for all
// model parameters (Sec. VI.D).
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ckat::nn {

/// Xavier/Glorot uniform: U(-sqrt(6/(fan_in+fan_out)), +...).
void xavier_uniform(Tensor& t, util::Rng& rng);

/// Xavier/Glorot normal: N(0, 2/(fan_in+fan_out)).
void xavier_normal(Tensor& t, util::Rng& rng);

/// Plain scaled normal N(0, stddev^2).
void normal_init(Tensor& t, util::Rng& rng, double stddev);

/// Uniform in [lo, hi).
void uniform_init(Tensor& t, util::Rng& rng, double lo, double hi);

}  // namespace ckat::nn
