#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace ckat::nn {

Tensor Tensor::from_values(std::size_t rows, std::size_t cols,
                           std::initializer_list<float> values) {
  if (values.size() != rows * cols) {
    throw std::invalid_argument("Tensor::from_values: element count mismatch");
  }
  Tensor t(rows, cols);
  std::copy(values.begin(), values.end(), t.data_.begin());
  return t;
}

void Tensor::reshape(std::size_t rows, std::size_t cols) {
  if (rows * cols != data_.size()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch");
  }
  rows_ = rows;
  cols_ = cols;
}

void Tensor::resize_zeroed(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0f);
}

double Tensor::sum() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Tensor::squared_norm() const noexcept {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

void Tensor::check_shape(std::size_t rows, std::size_t cols,
                         const char* context) const {
  if (rows_ != rows || cols_ != cols) {
    throw std::invalid_argument(std::string(context) + ": expected shape (" +
                                std::to_string(rows) + "," +
                                std::to_string(cols) + "), got " +
                                shape_str());
  }
}

std::string Tensor::shape_str() const {
  return "(" + std::to_string(rows_) + "," + std::to_string(cols_) + ")";
}

}  // namespace ckat::nn
