// Binary parameter serialization, so trained models can be saved and
// served without retraining.
//
// Format (little-endian):
//   magic "CKATPAR1" | u64 n_params |
//   per parameter: u32 name_len | name bytes | u64 rows | u64 cols |
//                  rows*cols f32 values
// Loading is strict: parameter names, order and shapes must match the
// store being loaded into (models define their stores deterministically
// from their configs, so a mismatch means the wrong config).
#pragma once

#include <string>

#include "nn/parameter.hpp"

namespace ckat::nn {

/// Writes every parameter value in the store to `path`.
/// Throws std::runtime_error on I/O failure.
void save_parameters(const ParamStore& store, const std::string& path);

/// Loads values saved by save_parameters into an existing store.
/// Throws std::runtime_error on I/O failure or any mismatch in
/// parameter count, names, order or shapes.
void load_parameters(ParamStore& store, const std::string& path);

}  // namespace ckat::nn
