// Binary parameter serialization, so trained models can be saved and
// served without retraining, plus durable training checkpoints so long
// runs can survive crashes, divergence and corrupted files.
//
// Plain parameter format (little-endian, legacy, still supported):
//   magic "CKATPAR1" | u64 n_params |
//   per parameter: u32 name_len | name bytes | u64 rows | u64 cols |
//                  rows*cols f32 values
// Loading is strict: parameter names, order and shapes must match the
// store being loaded into (models define their stores deterministically
// from their configs, so a mismatch means the wrong config).
//
// Checkpoint format (version 2, "CKATCKP2"):
//   header  : magic "CKATCKP2" | u32 version | u32 flags |
//             i32 epoch | u32 n_tensors | i64 cf_steps | i64 kg_steps |
//             u64 rng_state[4] | f32 lr_scale | u32 header_crc
//   tensors : u32 name_len | name bytes | u64 rows | u64 cols |
//             u8 has_moments | u32 value_crc | value payload |
//             [u32 m_crc | m payload | u32 v_crc | v payload]
// Every length field is bounds-checked against sane caps and against the
// remaining file size before anything is allocated; every payload (and
// the header itself) carries a CRC32, so truncation, bit-flips and
// stale/garbage files are each rejected with a descriptive error.
// Checkpoints are written atomically (temp file + rename): readers never
// observe a partially written checkpoint, and a failed write leaves the
// previous checkpoint untouched.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/parameter.hpp"

namespace ckat::nn {

/// CRC32 (IEEE 802.3, reflected 0xEDB88320), the checksum guarding every
/// checkpoint payload. `seed` chains incremental computations.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

/// Writes every parameter value in the store to `path`.
/// Throws std::runtime_error on I/O failure.
void save_parameters(const ParamStore& store, const std::string& path);

/// Loads values saved by save_parameters into an existing store.
/// Throws std::runtime_error on I/O failure or any mismatch in
/// parameter count, names, order or shapes. Corrupt length fields are
/// rejected before any allocation is attempted.
void load_parameters(ParamStore& store, const std::string& path);

/// Snapshot of one parameter: its value and (when the optimizer has
/// touched it) the Adam moment buffers.
struct TensorSnapshot {
  std::string name;
  Tensor value;
  Tensor opt_m;  // empty when no moments were captured
  Tensor opt_v;
};

/// Full training state: everything needed to resume a run bit-exactly —
/// parameters, optimizer moments and step counts, the training RNG and
/// the epoch reached. Produced by capture(), applied by restore(), and
/// made durable with save_checkpoint()/load_checkpoint().
struct TrainingCheckpoint {
  std::int32_t epoch = 0;
  std::int64_t cf_steps = 0;
  std::int64_t kg_steps = 0;
  std::array<std::uint64_t, 4> rng_state{};
  /// Current learning-rate multiplier (reduced by rollback recovery).
  float lr_scale = 1.0f;
  std::vector<TensorSnapshot> tensors;

  /// Copies every parameter (value + moment buffers) out of the store.
  void capture(const ParamStore& store);

  /// Writes the captured values back. Throws std::runtime_error if the
  /// store does not match the snapshot (count, names or shapes).
  void restore(ParamStore& store) const;
};

/// Atomically writes `checkpoint` to `path` (temp file + rename); on any
/// failure the temp file is removed, the previous file at `path` is left
/// intact, and std::runtime_error is thrown.
void save_checkpoint(const TrainingCheckpoint& checkpoint,
                     const std::string& path);

/// Reads and fully validates a checkpoint. Throws std::runtime_error
/// with a distinct message for bad magic, unsupported version, header
/// corruption, implausible length fields, truncation and payload CRC
/// mismatches.
TrainingCheckpoint load_checkpoint(const std::string& path);

}  // namespace ckat::nn
