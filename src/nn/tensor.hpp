// Dense 2-D float32 tensor. This is the single numeric container used by
// the autodiff engine, the models and the evaluator. Vectors are
// represented as 1xC or Rx1 tensors; everything is row-major.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ckat::nn {

class Tensor {
 public:
  Tensor() = default;

  Tensor(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  Tensor(std::size_t rows, std::size_t cols, float fill_value)
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  /// Builds a tensor from explicit row-major values.
  static Tensor from_values(std::size_t rows, std::size_t cols,
                            std::initializer_list<float> values);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] bool same_shape(const Tensor& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  float& operator()(std::size_t r, std::size_t c) noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float operator()(std::size_t r, std::size_t c) const noexcept {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] float* data() noexcept { return data_.data(); }
  [[nodiscard]] const float* data() const noexcept { return data_.data(); }

  [[nodiscard]] std::span<float> row(std::size_t r) noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const float> row(std::size_t r) const noexcept {
    assert(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  void fill(float v) noexcept { std::fill(data_.begin(), data_.end(), v); }
  void zero() noexcept { fill(0.0f); }

  /// Reshapes in place; total element count must be unchanged.
  void reshape(std::size_t rows, std::size_t cols);

  /// Resizes (destroying contents) to the given shape, zero-filled.
  void resize_zeroed(std::size_t rows, std::size_t cols);

  /// Sum of all elements (float64 accumulation).
  [[nodiscard]] double sum() const noexcept;
  /// Sum of squared elements (float64 accumulation).
  [[nodiscard]] double squared_norm() const noexcept;
  /// Largest absolute element; 0 for empty tensors.
  [[nodiscard]] float max_abs() const noexcept;

  /// Throws std::invalid_argument unless the shape matches.
  void check_shape(std::size_t rows, std::size_t cols,
                   const char* context) const;

  [[nodiscard]] std::string shape_str() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ckat::nn
