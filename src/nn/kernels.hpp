// Numeric kernels shared by forward and backward passes. All kernels are
// OpenMP-parallel over rows where the work justifies it; on a single core
// they degrade to clean serial loops.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace ckat::nn {

/// out (+)= alpha * A @ B.  A: (m,k), B: (k,n), out: (m,n).
/// If accumulate is false, out is overwritten.
void gemm(const Tensor& a, const Tensor& b, Tensor& out, float alpha = 1.0f,
          bool accumulate = false);

/// out (+)= alpha * A @ B^T.  A: (m,k), B: (n,k), out: (m,n).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& out,
             float alpha = 1.0f, bool accumulate = false);

/// out (+)= alpha * A^T @ B.  A: (k,m), B: (k,n), out: (m,n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& out,
             float alpha = 1.0f, bool accumulate = false);

/// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// Compressed sparse row matrix with float coefficients. Used for the
/// attention-weighted propagation (A_att @ E) in CKAT and for uniform
/// neighborhood averaging in the no-attention ablation.
struct CsrMatrix {
  std::size_t n_rows = 0;
  std::size_t n_cols = 0;
  std::vector<std::int64_t> row_offsets;  // size n_rows + 1
  std::vector<std::uint32_t> col_indices;
  std::vector<float> values;

  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }

  /// Builds the transpose (needed for the backward pass of spmm).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Validates internal invariants; throws std::invalid_argument.
  void validate() const;
};

/// Builds a CSR matrix from unsorted COO triplets. Duplicate (row,col)
/// entries are summed.
CsrMatrix csr_from_coo(std::size_t n_rows, std::size_t n_cols,
                       std::span<const std::uint32_t> rows,
                       std::span<const std::uint32_t> cols,
                       std::span<const float> values);

/// out (+)= A @ X where A is sparse (n_rows, n_cols) and X is (n_cols, d).
void spmm(const CsrMatrix& a, const Tensor& x, Tensor& out,
          bool accumulate = false);

}  // namespace ckat::nn
