// Numeric kernels shared by forward and backward passes. All kernels are
// OpenMP-parallel over rows where the work justifies it; on a single core
// they degrade to clean serial loops.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace ckat::nn {

/// out (+)= alpha * A @ B.  A: (m,k), B: (k,n), out: (m,n).
/// If accumulate is false, out is overwritten.
void gemm(const Tensor& a, const Tensor& b, Tensor& out, float alpha = 1.0f,
          bool accumulate = false);

/// out (+)= alpha * A @ B^T.  A: (m,k), B: (n,k), out: (m,n).
void gemm_nt(const Tensor& a, const Tensor& b, Tensor& out,
             float alpha = 1.0f, bool accumulate = false);

/// Instruction set used by the tiled gemm_nt_into kernel. kAuto picks
/// the widest path the host supports (detected once via cpuid). Every
/// path accumulates each output lane in plain kk order with separate
/// multiply and add (no FMA contraction), so switching ISA never
/// changes a single bit of the result -- the dispatch is pure
/// throughput. set_gemm_isa exists so tests and benches can pin or
/// cross-check paths; it throws std::invalid_argument if the host
/// cannot execute the requested ISA.
enum class GemmIsa { kAuto, kScalar, kSse2, kAvx2 };

void set_gemm_isa(GemmIsa isa);

/// The ISA gemm_nt_into will actually use (never kAuto).
[[nodiscard]] GemmIsa active_gemm_isa() noexcept;

/// out = A @ B^T written straight into a caller-owned row-major buffer:
/// out[i*n + j] = dot(A row i, B row j). The batched ranking engine
/// (eval/ranker.hpp) scores a block of users against the item-embedding
/// table with this: A is the gathered user block (m,k), B the item
/// table (n,k). Tiled over B rows so the item panel is streamed from
/// memory once per *block* instead of once per user; each output is an
/// independent dot product accumulated in index order, so results are
/// bit-identical to a per-user score_items loop. Deliberately serial:
/// callers parallelize across user sub-blocks (see BatchRanker), and a
/// nested OpenMP team here would oversubscribe their threads.
void gemm_nt_into(std::span<const float> a, std::size_t m, std::size_t k,
                  std::span<const float> b, std::size_t n,
                  std::span<float> out);

/// out (+)= alpha * A^T @ B.  A: (k,m), B: (k,n), out: (m,n).
void gemm_tn(const Tensor& a, const Tensor& b, Tensor& out,
             float alpha = 1.0f, bool accumulate = false);

/// y += alpha * x (shapes must match).
void axpy(float alpha, const Tensor& x, Tensor& y);

/// Compressed sparse row matrix with float coefficients. Used for the
/// attention-weighted propagation (A_att @ E) in CKAT and for uniform
/// neighborhood averaging in the no-attention ablation.
struct CsrMatrix {
  std::size_t n_rows = 0;
  std::size_t n_cols = 0;
  std::vector<std::int64_t> row_offsets;  // size n_rows + 1
  std::vector<std::uint32_t> col_indices;
  std::vector<float> values;

  [[nodiscard]] std::size_t nnz() const noexcept { return values.size(); }

  /// Builds the transpose (needed for the backward pass of spmm).
  [[nodiscard]] CsrMatrix transposed() const;

  /// Validates internal invariants; throws std::invalid_argument.
  void validate() const;
};

/// Builds a CSR matrix from unsorted COO triplets. Duplicate (row,col)
/// entries are summed.
CsrMatrix csr_from_coo(std::size_t n_rows, std::size_t n_cols,
                       std::span<const std::uint32_t> rows,
                       std::span<const std::uint32_t> cols,
                       std::span<const float> values);

/// out (+)= A @ X where A is sparse (n_rows, n_cols) and X is (n_cols, d).
void spmm(const CsrMatrix& a, const Tensor& x, Tensor& out,
          bool accumulate = false);

}  // namespace ckat::nn
