// Optimizers. Adam (Kingma & Ba 2014) is the paper's optimizer for all
// models (Sec. VI.D); SGD is provided for tests and ablations.
//
// Embedding parameters whose gradients came only from gathers are
// updated sparsely: only the touched rows pay the moment update, with
// global-step bias correction (the "SparseAdam" convention).
#pragma once

#include "nn/parameter.hpp"

namespace ckat::util {
class WorkerPool;
}  // namespace ckat::util

namespace ckat::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients accumulated in the store,
  /// then clears them.
  virtual void step(ParamStore& params) = 0;
};

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(float lr) : lr_(lr) {}
  void step(ParamStore& params) override;

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }

 private:
  float lr_;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                         float eps = 1e-8f)
      : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void step(ParamStore& params) override;

  /// Parallel variant: shards the (parameter, row) work list across the
  /// pool's workers. Each row's moment/value update touches only that
  /// row, so updates are independent and the result is bit-identical to
  /// the serial step() at every pool size -- the work list is built in
  /// deterministic (creation, touch) order and sharded contiguously,
  /// and no floating-point reduction crosses a row boundary.
  void step(ParamStore& params, util::WorkerPool& pool);

  [[nodiscard]] float learning_rate() const noexcept { return lr_; }
  [[nodiscard]] long step_count() const noexcept { return t_; }

  /// Checkpoint/rollback support: the step count feeds the bias
  /// correction, so restoring parameters and moment buffers without
  /// restoring it would change the effective update scale.
  void set_step_count(long t) noexcept { t_ = t; }
  /// Rollback recovery lowers the learning rate before retrying.
  void set_learning_rate(float lr) noexcept { lr_ = lr; }

 private:
  void update_row(Parameter& p, std::size_t row, float bias_correction1,
                  float bias_correction2);

  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
};

}  // namespace ckat::nn
