#include "nn/tape.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ckat::nn {

namespace {
void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  if (!a.same_shape(b)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                a.shape_str() + " vs " + b.shape_str());
  }
}
}  // namespace

Var Tape::push(Tensor value, bool requires_grad,
               std::function<void(Tape&)> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.requires_grad = requires_grad;
  n.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Var{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

Tape::Node& Tape::node(Var v) {
  if (!v.valid() || v.idx >= nodes_.size()) {
    throw std::out_of_range("Tape: invalid Var");
  }
  return nodes_[v.idx];
}

const Tape::Node& Tape::node(Var v) const {
  if (!v.valid() || v.idx >= nodes_.size()) {
    throw std::out_of_range("Tape: invalid Var");
  }
  return nodes_[v.idx];
}

Tensor& Tape::ensure_grad(Var v) {
  Node& n = node(v);
  if (!n.grad_ready) {
    n.grad.resize_zeroed(n.value.rows(), n.value.cols());
    n.grad_ready = true;
  }
  return n.grad;
}

const Tensor& Tape::value(Var v) const { return node(v).value; }

const Tensor& Tape::grad(Var v) const {
  const Node& n = node(v);
  if (!n.grad_ready) throw std::logic_error("Tape::grad: no gradient present");
  return n.grad;
}

bool Tape::requires_grad(Var v) const { return node(v).requires_grad; }

void Tape::clear() { nodes_.clear(); }

// ---------------------------------------------------------------- leaves

Var Tape::constant(Tensor value) { return push(std::move(value), false, {}); }

Var Tape::input(Tensor value) {
  // A leaf with no backward closure: the accumulated gradient simply
  // stays on the node for the caller to read.
  return push(std::move(value), true, {});
}

Var Tape::param(Parameter& p) {
  Tensor copy = p.value();
  Parameter* pp = &p;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(copy), true, [out, pp](Tape& t) {
    axpy(1.0f, t.node(out).grad, pp->grad());
    pp->mark_dense();
  });
}

Var Tape::gather_param(Parameter& table, std::vector<std::uint32_t> rows) {
  const std::size_t d = table.cols();
  Tensor out_value(rows.size(), d);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= table.rows()) {
      throw std::out_of_range("gather_param: row index out of range");
    }
    auto src = table.value().row(rows[i]);
    std::copy(src.begin(), src.end(), out_value.row(i).begin());
  }
  Parameter* pp = &table;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), true,
              [out, pp, idx = std::move(rows)](Tape& t) {
                const Tensor& g = t.node(out).grad;
                for (std::size_t i = 0; i < idx.size(); ++i) {
                  auto dst = pp->grad().row(idx[i]);
                  auto src = g.row(i);
                  for (std::size_t c = 0; c < dst.size(); ++c) {
                    dst[c] += src[c];
                  }
                  pp->mark_row(idx[i]);
                }
              });
}

// ---------------------------------------------------------- linear algebra

Var Tape::matmul(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  Tensor out_value(av.rows(), bv.cols());
  gemm(av, bv, out_value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) {
      gemm_nt(g, t.node(b).value, t.ensure_grad(a), 1.0f, true);
    }
    if (t.node(b).requires_grad) {
      gemm_tn(t.node(a).value, g, t.ensure_grad(b), 1.0f, true);
    }
  });
}

Var Tape::matmul_nt(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  Tensor out_value(av.rows(), bv.rows());
  gemm_nt(av, bv, out_value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b](Tape& t) {
    const Tensor& g = t.node(out).grad;  // (m,n); a:(m,k) b:(n,k)
    if (t.node(a).requires_grad) {
      gemm(g, t.node(b).value, t.ensure_grad(a), 1.0f, true);
    }
    if (t.node(b).requires_grad) {
      gemm_tn(g, t.node(a).value, t.ensure_grad(b), 1.0f, true);
    }
  });
}

Var Tape::spmm_fixed(const CsrMatrix& a, const CsrMatrix& a_transposed,
                     Var x) {
  const Tensor& xv = node(x).value;
  Tensor out_value(a.n_rows, xv.cols());
  spmm(a, xv, out_value);
  const bool rg = node(x).requires_grad;
  const CsrMatrix* at = &a_transposed;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, x, at](Tape& t) {
    if (t.node(x).requires_grad) {
      spmm(*at, t.node(out).grad, t.ensure_grad(x), /*accumulate=*/true);
    }
  });
}

// -------------------------------------------------------------- elementwise

Var Tape::add(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  check_same_shape(av, bv, "add");
  Tensor out_value = av;
  axpy(1.0f, bv, out_value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) axpy(1.0f, g, t.ensure_grad(a));
    if (t.node(b).requires_grad) axpy(1.0f, g, t.ensure_grad(b));
  });
}

Var Tape::sub(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  check_same_shape(av, bv, "sub");
  Tensor out_value = av;
  axpy(-1.0f, bv, out_value);
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) axpy(1.0f, g, t.ensure_grad(a));
    if (t.node(b).requires_grad) axpy(-1.0f, g, t.ensure_grad(b));
  });
}

Var Tape::mul(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  check_same_shape(av, bv, "mul");
  Tensor out_value = av;
  for (std::size_t i = 0; i < out_value.size(); ++i) {
    out_value.data()[i] *= bv.data()[i];
  }
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) {
      Tensor& ga = t.ensure_grad(a);
      const Tensor& bv2 = t.node(b).value;
      for (std::size_t i = 0; i < g.size(); ++i) {
        ga.data()[i] += g.data()[i] * bv2.data()[i];
      }
    }
    if (t.node(b).requires_grad) {
      Tensor& gb = t.ensure_grad(b);
      const Tensor& av2 = t.node(a).value;
      for (std::size_t i = 0; i < g.size(); ++i) {
        gb.data()[i] += g.data()[i] * av2.data()[i];
      }
    }
  });
}

Var Tape::scale(Var a, float s) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) v *= s;
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, s](Tape& t) {
    if (t.node(a).requires_grad) axpy(s, t.node(out).grad, t.ensure_grad(a));
  });
}

Var Tape::add_scalar(Var a, float s) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) v += s;
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (t.node(a).requires_grad) {
      axpy(1.0f, t.node(out).grad, t.ensure_grad(a));
    }
  });
}

Var Tape::square(Var a) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) v *= v;
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    const Tensor& av = t.node(a).value;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] += 2.0f * av.data()[i] * g.data()[i];
    }
  });
}

Var Tape::tanh_op(Var a) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) v = std::tanh(v);
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    const Tensor& y = t.node(out).value;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float yi = y.data()[i];
      ga.data()[i] += g.data()[i] * (1.0f - yi * yi);
    }
  });
}

Var Tape::sigmoid(Var a) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) {
    v = v >= 0.0f ? 1.0f / (1.0f + std::exp(-v))
                  : std::exp(v) / (1.0f + std::exp(v));
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    const Tensor& y = t.node(out).value;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float yi = y.data()[i];
      ga.data()[i] += g.data()[i] * yi * (1.0f - yi);
    }
  });
}

Var Tape::relu(Var a) { return leaky_relu(a, 0.0f); }

Var Tape::leaky_relu(Var a, float negative_slope) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) {
    if (v < 0.0f) v *= negative_slope;
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, negative_slope](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    const Tensor& x = t.node(a).value;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      ga.data()[i] +=
          g.data()[i] * (x.data()[i] >= 0.0f ? 1.0f : negative_slope);
    }
  });
}

Var Tape::softplus(Var a) {
  Tensor out_value = node(a).value;
  for (float& v : out_value.flat()) {
    // ln(1+e^x) = max(x,0) + log1p(e^{-|x|})
    v = std::max(v, 0.0f) + std::log1p(std::exp(-std::fabs(v)));
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    const Tensor& x = t.node(a).value;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t i = 0; i < g.size(); ++i) {
      const float xi = x.data()[i];
      const float sig = xi >= 0.0f ? 1.0f / (1.0f + std::exp(-xi))
                                   : std::exp(xi) / (1.0f + std::exp(xi));
      ga.data()[i] += g.data()[i] * sig;
    }
  });
}

Var Tape::add_rowvec(Var a, Var bias) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(bias).value;
  if (bv.rows() != 1 || bv.cols() != av.cols()) {
    throw std::invalid_argument("add_rowvec: bias must be (1, cols)");
  }
  Tensor out_value = av;
  for (std::size_t r = 0; r < av.rows(); ++r) {
    auto row = out_value.row(r);
    for (std::size_t c = 0; c < av.cols(); ++c) row[c] += bv(0, c);
  }
  const bool rg = node(a).requires_grad || node(bias).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, bias](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) axpy(1.0f, g, t.ensure_grad(a));
    if (t.node(bias).requires_grad) {
      Tensor& gb = t.ensure_grad(bias);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        auto row = g.row(r);
        for (std::size_t c = 0; c < g.cols(); ++c) gb(0, c) += row[c];
      }
    }
  });
}

Var Tape::mul_colvec(Var a, Var w) {
  const Tensor& av = node(a).value;
  const Tensor& wv = node(w).value;
  if (wv.cols() != 1 || wv.rows() != av.rows()) {
    throw std::invalid_argument("mul_colvec: weight must be (rows, 1)");
  }
  Tensor out_value = av;
  for (std::size_t r = 0; r < av.rows(); ++r) {
    const float s = wv(r, 0);
    auto row = out_value.row(r);
    for (float& v : row) v *= s;
  }
  const bool rg = node(a).requires_grad || node(w).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, w](Tape& t) {
    const Tensor& g = t.node(out).grad;
    const Tensor& av2 = t.node(a).value;
    const Tensor& wv2 = t.node(w).value;
    if (t.node(a).requires_grad) {
      Tensor& ga = t.ensure_grad(a);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        const float s = wv2(r, 0);
        auto grow = g.row(r);
        auto garow = ga.row(r);
        for (std::size_t c = 0; c < g.cols(); ++c) garow[c] += s * grow[c];
      }
    }
    if (t.node(w).requires_grad) {
      Tensor& gw = t.ensure_grad(w);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        auto grow = g.row(r);
        auto arow = av2.row(r);
        float acc = 0.0f;
        for (std::size_t c = 0; c < g.cols(); ++c) acc += grow[c] * arow[c];
        gw(r, 0) += acc;
      }
    }
  });
}

// ----------------------------------------------------------- shape / gather

Var Tape::concat_cols(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  if (av.rows() != bv.rows()) {
    throw std::invalid_argument("concat_cols: row count mismatch");
  }
  Tensor out_value(av.rows(), av.cols() + bv.cols());
  for (std::size_t r = 0; r < av.rows(); ++r) {
    auto dst = out_value.row(r);
    auto ra = av.row(r);
    auto rb = bv.row(r);
    std::copy(ra.begin(), ra.end(), dst.begin());
    std::copy(rb.begin(), rb.end(), dst.begin() + av.cols());
  }
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const std::size_t ca = av.cols();
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b, ca](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) {
      Tensor& ga = t.ensure_grad(a);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        auto grow = g.row(r);
        auto garow = ga.row(r);
        for (std::size_t c = 0; c < ca; ++c) garow[c] += grow[c];
      }
    }
    if (t.node(b).requires_grad) {
      Tensor& gb = t.ensure_grad(b);
      for (std::size_t r = 0; r < g.rows(); ++r) {
        auto grow = g.row(r);
        auto gbrow = gb.row(r);
        for (std::size_t c = 0; c < gbrow.size(); ++c) {
          gbrow[c] += grow[ca + c];
        }
      }
    }
  });
}

Var Tape::concat_rows(Var a, Var b) {
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  if (av.cols() != bv.cols()) {
    throw std::invalid_argument("concat_rows: column count mismatch");
  }
  Tensor out_value(av.rows() + bv.rows(), av.cols());
  std::copy(av.flat().begin(), av.flat().end(), out_value.flat().begin());
  std::copy(bv.flat().begin(), bv.flat().end(),
            out_value.flat().begin() + static_cast<std::ptrdiff_t>(av.size()));
  const bool rg = node(a).requires_grad || node(b).requires_grad;
  const std::size_t ra = av.rows();
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a, b, ra](Tape& t) {
    const Tensor& g = t.node(out).grad;
    if (t.node(a).requires_grad) {
      Tensor& ga = t.ensure_grad(a);
      for (std::size_t i = 0; i < ga.size(); ++i) {
        ga.data()[i] += g.data()[i];
      }
    }
    if (t.node(b).requires_grad) {
      Tensor& gb = t.ensure_grad(b);
      const std::size_t offset = ra * g.cols();
      for (std::size_t i = 0; i < gb.size(); ++i) {
        gb.data()[i] += g.data()[offset + i];
      }
    }
  });
}

Var Tape::rows(Var a, std::vector<std::uint32_t> indices) {
  const Tensor& av = node(a).value;
  Tensor out_value(indices.size(), av.cols());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    if (indices[i] >= av.rows()) {
      throw std::out_of_range("rows: index out of range");
    }
    auto src = av.row(indices[i]);
    std::copy(src.begin(), src.end(), out_value.row(i).begin());
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg,
              [out, a, idx = std::move(indices)](Tape& t) {
                if (!t.node(a).requires_grad) return;
                const Tensor& g = t.node(out).grad;
                Tensor& ga = t.ensure_grad(a);
                for (std::size_t i = 0; i < idx.size(); ++i) {
                  auto dst = ga.row(idx[i]);
                  auto src = g.row(i);
                  for (std::size_t c = 0; c < dst.size(); ++c) {
                    dst[c] += src[c];
                  }
                }
              });
}

// ------------------------------------------------------ reductions/segments

Var Tape::reduce_sum(Var a) {
  Tensor out_value(1, 1);
  out_value(0, 0) = static_cast<float>(node(a).value.sum());
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const float g = t.node(out).grad(0, 0);
    Tensor& ga = t.ensure_grad(a);
    for (float& v : ga.flat()) v += g;
  });
}

Var Tape::reduce_mean(Var a) {
  const std::size_t n = node(a).value.size();
  if (n == 0) throw std::invalid_argument("reduce_mean: empty input");
  Var total = reduce_sum(a);
  return scale(total, 1.0f / static_cast<float>(n));
}

Var Tape::sum_cols(Var a) {
  const Tensor& av = node(a).value;
  Tensor out_value(av.rows(), 1);
  for (std::size_t r = 0; r < av.rows(); ++r) {
    double acc = 0.0;
    for (float v : av.row(r)) acc += v;
    out_value(r, 0) = static_cast<float>(acc);
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg, [out, a](Tape& t) {
    if (!t.node(a).requires_grad) return;
    const Tensor& g = t.node(out).grad;
    Tensor& ga = t.ensure_grad(a);
    for (std::size_t r = 0; r < ga.rows(); ++r) {
      const float gr = g(r, 0);
      for (float& v : ga.row(r)) v += gr;
    }
  });
}

Var Tape::segment_sum(Var a, std::vector<std::uint32_t> segment_ids,
                      std::size_t n_segments) {
  const Tensor& av = node(a).value;
  if (segment_ids.size() != av.rows()) {
    throw std::invalid_argument("segment_sum: one segment id per row");
  }
  Tensor out_value(n_segments, av.cols());
  for (std::size_t r = 0; r < av.rows(); ++r) {
    if (segment_ids[r] >= n_segments) {
      throw std::out_of_range("segment_sum: segment id out of range");
    }
    auto dst = out_value.row(segment_ids[r]);
    auto src = av.row(r);
    for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg,
              [out, a, ids = std::move(segment_ids)](Tape& t) {
                if (!t.node(a).requires_grad) return;
                const Tensor& g = t.node(out).grad;
                Tensor& ga = t.ensure_grad(a);
                for (std::size_t r = 0; r < ga.rows(); ++r) {
                  auto src = g.row(ids[r]);
                  auto dst = ga.row(r);
                  for (std::size_t c = 0; c < dst.size(); ++c) {
                    dst[c] += src[c];
                  }
                }
              });
}

Var Tape::segment_softmax(Var scores, std::vector<std::uint32_t> segment_ids) {
  const Tensor& sv = node(scores).value;
  if (sv.cols() != 1) {
    throw std::invalid_argument("segment_softmax: scores must be (E,1)");
  }
  if (segment_ids.size() != sv.rows()) {
    throw std::invalid_argument("segment_softmax: one segment id per row");
  }
  std::uint32_t max_seg = 0;
  for (std::uint32_t s : segment_ids) max_seg = std::max(max_seg, s);
  const std::size_t n_segments = segment_ids.empty() ? 0 : max_seg + 1;

  // Numerically stable per-segment softmax.
  std::vector<float> seg_max(n_segments, -std::numeric_limits<float>::infinity());
  for (std::size_t r = 0; r < sv.rows(); ++r) {
    seg_max[segment_ids[r]] = std::max(seg_max[segment_ids[r]], sv(r, 0));
  }
  std::vector<double> seg_denominator(n_segments, 0.0);
  Tensor out_value(sv.rows(), 1);
  for (std::size_t r = 0; r < sv.rows(); ++r) {
    // A fully masked segment has seg_max == -inf; exp(-inf - -inf) is NaN,
    // so treat every entry of such a segment as weight zero instead.
    const float m = seg_max[segment_ids[r]];
    const float e =
        std::isinf(m) ? 0.0f : std::exp(sv(r, 0) - m);
    out_value(r, 0) = e;
    seg_denominator[segment_ids[r]] += e;
  }
  for (std::size_t r = 0; r < sv.rows(); ++r) {
    const double d = seg_denominator[segment_ids[r]];
    out_value(r, 0) =
        d == 0.0 ? 0.0f : static_cast<float>(out_value(r, 0) / d);
  }

  const bool rg = node(scores).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg,
              [out, scores, ids = std::move(segment_ids), n_segments](Tape& t) {
                if (!t.node(scores).requires_grad) return;
                const Tensor& g = t.node(out).grad;
                const Tensor& y = t.node(out).value;
                Tensor& gs = t.ensure_grad(scores);
                // dL/dx_i = y_i * (g_i - sum_j in segment g_j * y_j)
                std::vector<double> seg_dot(n_segments, 0.0);
                for (std::size_t r = 0; r < y.rows(); ++r) {
                  seg_dot[ids[r]] +=
                      static_cast<double>(g(r, 0)) * y(r, 0);
                }
                for (std::size_t r = 0; r < y.rows(); ++r) {
                  gs(r, 0) += y(r, 0) * (g(r, 0) -
                                         static_cast<float>(seg_dot[ids[r]]));
                }
              });
}

// ------------------------------------------------------------ regularizers

Var Tape::l2_normalize_rows(Var a, float eps) {
  const Tensor& av = node(a).value;
  Tensor out_value = av;
  std::vector<float> norms(av.rows());
  std::vector<std::uint8_t> clamped(av.rows());
  for (std::size_t r = 0; r < av.rows(); ++r) {
    double acc = 0.0;
    for (float v : av.row(r)) acc += static_cast<double>(v) * v;
    const float raw = static_cast<float>(std::sqrt(acc));
    clamped[r] = raw < eps ? 1 : 0;
    norms[r] = clamped[r] ? eps : raw;
    for (float& v : out_value.row(r)) v /= norms[r];
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg,
              [out, a, n = std::move(norms), cl = std::move(clamped)](Tape& t) {
                if (!t.node(a).requires_grad) return;
                const Tensor& g = t.node(out).grad;
                const Tensor& y = t.node(out).value;
                Tensor& ga = t.ensure_grad(a);
                for (std::size_t r = 0; r < y.rows(); ++r) {
                  auto grow = g.row(r);
                  auto yrow = y.row(r);
                  auto garow = ga.row(r);
                  if (cl[r]) {
                    // Clamped branch: y = x / eps with eps constant, so
                    // the Jacobian is diag(1/eps) -- no projection term.
                    for (std::size_t c = 0; c < grow.size(); ++c) {
                      garow[c] += grow[c] / n[r];
                    }
                    continue;
                  }
                  float dot = 0.0f;
                  for (std::size_t c = 0; c < grow.size(); ++c) {
                    dot += grow[c] * yrow[c];
                  }
                  for (std::size_t c = 0; c < grow.size(); ++c) {
                    garow[c] += (grow[c] - yrow[c] * dot) / n[r];
                  }
                }
              });
}

Var Tape::dropout(Var a, float p, util::Rng& rng, bool training) {
  if (!training || p <= 0.0f) {
    // Identity pass-through node keeps graph structure uniform.
    return scale(a, 1.0f);
  }
  if (p >= 1.0f) throw std::invalid_argument("dropout: p must be < 1");
  const Tensor& av = node(a).value;
  const float keep_inverse = 1.0f / (1.0f - p);
  std::vector<std::uint8_t> mask(av.size());
  Tensor out_value = av;
  for (std::size_t i = 0; i < av.size(); ++i) {
    mask[i] = rng.uniform_float() >= p ? 1 : 0;
    out_value.data()[i] = mask[i] ? av.data()[i] * keep_inverse : 0.0f;
  }
  const bool rg = node(a).requires_grad;
  Var out{static_cast<std::uint32_t>(nodes_.size())};
  return push(std::move(out_value), rg,
              [out, a, m = std::move(mask), keep_inverse](Tape& t) {
                if (!t.node(a).requires_grad) return;
                const Tensor& g = t.node(out).grad;
                Tensor& ga = t.ensure_grad(a);
                for (std::size_t i = 0; i < g.size(); ++i) {
                  if (m[i]) ga.data()[i] += g.data()[i] * keep_inverse;
                }
              });
}

// --------------------------------------------------------------- execution

void Tape::backward(Var loss) {
  const Node& ln = node(loss);
  if (ln.value.rows() != 1 || ln.value.cols() != 1) {
    throw std::invalid_argument("backward: loss must be a (1,1) scalar");
  }
  Tensor seed(1, 1);
  seed(0, 0) = 1.0f;
  backward_seeded(loss, seed);
}

void Tape::backward_seeded(Var from, const Tensor& seed) {
  Node& fn = node(from);
  if (!fn.requires_grad) {
    throw std::invalid_argument(
        "backward_seeded: node does not require gradients");
  }
  check_same_shape(fn.value, seed, "backward_seeded");
  axpy(1.0f, seed, ensure_grad(from));
  for (std::size_t i = static_cast<std::size_t>(from.idx) + 1; i-- > 0;) {
    Node& n = nodes_[i];
    if (n.requires_grad && n.grad_ready && n.backward_fn) {
      n.backward_fn(*this);
    }
  }
}

}  // namespace ckat::nn
