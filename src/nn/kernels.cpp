#include "nn/kernels.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

// The AVX2 tile kernel is compiled per-function via
// __attribute__((target("avx2"))) and selected at runtime behind a
// cpuid check, so the translation unit itself needs no -mavx2 (and the
// binary still runs on SSE2-only hosts). Only GCC/Clang on x86-64
// support that combination.
#if defined(__x86_64__) && defined(__GNUC__) && defined(__SSE2__)
#define CKAT_GEMM_HAS_AVX2 1
#include <immintrin.h>
#else
#define CKAT_GEMM_HAS_AVX2 0
#endif

#include <atomic>

#ifdef CKAT_PROFILE_KERNELS
#include <chrono>
#include <cstdint>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#endif

namespace ckat::nn {

namespace {
void check_gemm_shapes(std::size_t am, std::size_t ak, std::size_t bk,
                       std::size_t bn, const Tensor& out, const char* name) {
  if (ak != bk) {
    throw std::invalid_argument(std::string(name) + ": inner dim mismatch");
  }
  if (out.rows() != am || out.cols() != bn) {
    throw std::invalid_argument(std::string(name) + ": output shape mismatch");
  }
}

#ifdef CKAT_PROFILE_KERNELS
// Op-level cycle accounting, compiled in only with
// -DCKAT_PROFILE_KERNELS=ON so the default build stays zero-cost (not
// even a branch). Exposed as ckat_kernel_calls_total{op=...} and
// ckat_kernel_cycles_total{op=...}; cycles come from rdtsc on x86-64
// (nanoseconds elsewhere, close enough for relative op cost).
inline std::uint64_t kernel_ticks() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

struct KernelCounters {
  obs::Counter& calls;
  obs::Counter& cycles;

  explicit KernelCounters(const char* op)
      : calls(obs::MetricsRegistry::global().counter(
            obs::metric_names::kKernelCallsTotal, {{"op", op}})),
        cycles(obs::MetricsRegistry::global().counter(
            obs::metric_names::kKernelCyclesTotal, {{"op", op}})) {}
};

class KernelScope {
 public:
  explicit KernelScope(KernelCounters& counters)
      : counters_(counters), start_(kernel_ticks()) {}
  ~KernelScope() {
    counters_.calls.inc();
    counters_.cycles.inc(kernel_ticks() - start_);
  }
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  KernelCounters& counters_;
  std::uint64_t start_;
};

#define CKAT_KERNEL_SCOPE(op)                         \
  static KernelCounters kernel_counters_static(op);   \
  KernelScope kernel_scope_instance(kernel_counters_static)
#else
#define CKAT_KERNEL_SCOPE(op) ((void)0)
#endif
}  // namespace

void gemm(const Tensor& a, const Tensor& b, Tensor& out, float alpha,
          bool accumulate) {
  CKAT_KERNEL_SCOPE("gemm");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  check_gemm_shapes(m, k, b.rows(), n, out, "gemm");
  if (!accumulate) out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    const float* arow = pa + i * k;
    // i-k-j loop order streams B rows; the j-loop vectorizes.
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aik = alpha * arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void gemm_nt(const Tensor& a, const Tensor& b, Tensor& out, float alpha,
             bool accumulate) {
  CKAT_KERNEL_SCOPE("gemm_nt");
  const std::size_t m = a.rows(), k = a.cols(), n = b.rows();
  check_gemm_shapes(m, k, b.cols(), n, out, "gemm_nt");
  if (!accumulate) out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* orow = po + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      orow[j] += alpha * acc;
    }
  }
}

namespace {

#if CKAT_GEMM_HAS_AVX2
// 16-lane tile step in two 256-bit accumulators. Lane r still sums item
// j0+r's products in plain kk order, and target("avx2") deliberately
// does NOT enable FMA, so vmulps+vaddps round exactly like the SSE2 and
// scalar paths -- the wider registers only buy throughput.
__attribute__((target("avx2"))) void gemm_tile16_avx2(const float* arow,
                                                      const float* ptile,
                                                      std::size_t k,
                                                      float* orow) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (std::size_t kk = 0; kk < k; ++kk) {
    const __m256 av = _mm256_set1_ps(arow[kk]);
    const float* bp = ptile + kk * 16;
    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(bp)));
    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(bp + 8)));
  }
  _mm256_storeu_ps(orow, acc0);
  _mm256_storeu_ps(orow + 8, acc1);
}

bool host_has_avx2() {
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
}
#else
bool host_has_avx2() { return false; }
#endif

GemmIsa best_supported_isa() {
#if defined(__SSE2__)
  return host_has_avx2() ? GemmIsa::kAvx2 : GemmIsa::kSse2;
#else
  return GemmIsa::kScalar;
#endif
}

std::atomic<GemmIsa> g_gemm_isa{GemmIsa::kAuto};

}  // namespace

void set_gemm_isa(GemmIsa isa) {
  if (isa == GemmIsa::kAvx2 && !host_has_avx2()) {
    throw std::invalid_argument("set_gemm_isa: host does not support AVX2");
  }
#if !defined(__SSE2__)
  if (isa == GemmIsa::kSse2) {
    throw std::invalid_argument("set_gemm_isa: build has no SSE2 path");
  }
#endif
  // NOLINTNEXTLINE(ckat-relaxed-atomic): isolated mode flag; publishes no other state
  g_gemm_isa.store(isa, std::memory_order_relaxed);
}

GemmIsa active_gemm_isa() noexcept {
  // NOLINTNEXTLINE(ckat-relaxed-atomic): isolated mode flag; gates no other memory
  const GemmIsa forced = g_gemm_isa.load(std::memory_order_relaxed);
  return forced == GemmIsa::kAuto ? best_supported_isa() : forced;
}

void gemm_nt_into(std::span<const float> a, std::size_t m, std::size_t k,
                  std::span<const float> b, std::size_t n,
                  std::span<float> out) {
  CKAT_KERNEL_SCOPE("gemm_nt_into");
  if (a.size() != m * k || b.size() != n * k) {
    throw std::invalid_argument("gemm_nt_into: input size mismatch");
  }
  if (out.size() != m * n) {
    throw std::invalid_argument("gemm_nt_into: output size mismatch");
  }
  if (m == 0 || n == 0) return;
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  if (k == 0) {
    std::fill(out.begin(), out.end(), 0.0f);
    return;
  }
  // kNr B rows per tile, re-packed k-major (ptile[kk * kNr + r] = row
  // j0+r, coord kk) once per tile and reused across all m A rows.
  //
  // Why this shape: a single dot product is a sequential dependency
  // chain the bit-identity contract forbids reassociating, so per-dot
  // throughput is capped by FP-add latency and no amount of -O3 helps.
  // The kNr lanes here are *independent* chains — lane r sums item
  // j0+r's products in plain kk order, exactly like the scalar loop —
  // so each step is broadcast(a[kk]) * contiguous lane load, and the
  // four accumulator vectors overlap the FP-add latency of each other.
  //
  // The hot loop is written with SSE2 intrinsics rather than left to
  // the auto-vectorizer: GCC 12 SLP-vectorizes the equivalent scalar
  // lane loop *across kk* and emits a shuffle-bound in-register
  // transpose that runs slower than the plain per-user loop. SSE2 is
  // part of the x86-64 baseline ABI, so the guard only ever falls back
  // on non-x86 targets. Bit-identity holds in both paths: packed
  // mulps/addps round each lane exactly like scalar mulss/addss, and
  // neither path can contract to FMA (the baseline ISA has no FMA
  // instruction, and the fallback writes `a * b` then `+=` as separate
  // expressions).
  constexpr std::size_t kNr = 16;
  const GemmIsa isa = active_gemm_isa();
  std::vector<float> ptile(kNr * k);
  for (std::size_t j0 = 0; j0 + kNr <= n; j0 += kNr) {
    for (std::size_t r = 0; r < kNr; ++r) {
      const float* brow = pb + (j0 + r) * k;
      for (std::size_t kk = 0; kk < k; ++kk) {
        ptile[kk * kNr + r] = brow[kk];
      }
    }
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float* orow = po + i * n + j0;
#if CKAT_GEMM_HAS_AVX2
      if (isa == GemmIsa::kAvx2) {
        gemm_tile16_avx2(arow, ptile.data(), k, orow);
        continue;
      }
#endif
#if defined(__SSE2__)
      if (isa != GemmIsa::kScalar) {
        __m128 acc0 = _mm_setzero_ps();
        __m128 acc1 = _mm_setzero_ps();
        __m128 acc2 = _mm_setzero_ps();
        __m128 acc3 = _mm_setzero_ps();
        for (std::size_t kk = 0; kk < k; ++kk) {
          const __m128 av = _mm_set1_ps(arow[kk]);
          const float* bp = ptile.data() + kk * kNr;
          acc0 = _mm_add_ps(acc0, _mm_mul_ps(av, _mm_loadu_ps(bp)));
          acc1 = _mm_add_ps(acc1, _mm_mul_ps(av, _mm_loadu_ps(bp + 4)));
          acc2 = _mm_add_ps(acc2, _mm_mul_ps(av, _mm_loadu_ps(bp + 8)));
          acc3 = _mm_add_ps(acc3, _mm_mul_ps(av, _mm_loadu_ps(bp + 12)));
        }
        _mm_storeu_ps(orow, acc0);
        _mm_storeu_ps(orow + 4, acc1);
        _mm_storeu_ps(orow + 8, acc2);
        _mm_storeu_ps(orow + 12, acc3);
        continue;
      }
#endif
      float acc[kNr] = {};
      for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* bp = ptile.data() + kk * kNr;
        for (std::size_t r = 0; r < kNr; ++r) acc[r] += av * bp[r];
      }
      for (std::size_t r = 0; r < kNr; ++r) orow[r] = acc[r];
    }
  }
  // Remainder rows (n % kNr): plain scalar dots, same element order.
  for (std::size_t j = n - n % kNr; j < n; ++j) {
    const float* brow = pb + j * k;
    for (std::size_t i = 0; i < m; ++i) {
      const float* arow = pa + i * k;
      float acc = 0.0f;
      for (std::size_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      po[i * n + j] = acc;
    }
  }
}

void gemm_tn(const Tensor& a, const Tensor& b, Tensor& out, float alpha,
             bool accumulate) {
  CKAT_KERNEL_SCOPE("gemm_tn");
  const std::size_t k = a.rows(), m = a.cols(), n = b.cols();
  check_gemm_shapes(m, k, b.rows(), n, out, "gemm_tn");
  if (!accumulate) out.zero();
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  // Serial over k with rank-1 updates; rows of out are touched by every
  // k-step, so parallelism here goes over output rows via chunking m.
#pragma omp parallel for schedule(static) if (m * n * k > 16384)
  for (std::size_t i = 0; i < m; ++i) {
    float* orow = po + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aki = alpha * pa[kk * m + i];
      if (aki == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  CKAT_KERNEL_SCOPE("axpy");
  if (!x.same_shape(y)) throw std::invalid_argument("axpy: shape mismatch");
  const float* px = x.data();
  float* py = y.data();
  const std::size_t n = x.size();
#pragma omp parallel for schedule(static) if (n > 65536)
  for (std::size_t i = 0; i < n; ++i) py[i] += alpha * px[i];
}

CsrMatrix CsrMatrix::transposed() const {
  CsrMatrix t;
  t.n_rows = n_cols;
  t.n_cols = n_rows;
  t.row_offsets.assign(n_cols + 1, 0);
  t.col_indices.resize(nnz());
  t.values.resize(nnz());
  for (std::uint32_t c : col_indices) t.row_offsets[c + 1]++;
  std::partial_sum(t.row_offsets.begin(), t.row_offsets.end(),
                   t.row_offsets.begin());
  std::vector<std::int64_t> cursor(t.row_offsets.begin(),
                                   t.row_offsets.end() - 1);
  for (std::size_t r = 0; r < n_rows; ++r) {
    for (std::int64_t k = row_offsets[r]; k < row_offsets[r + 1]; ++k) {
      const std::uint32_t c = col_indices[k];
      const std::int64_t pos = cursor[c]++;
      t.col_indices[pos] = static_cast<std::uint32_t>(r);
      t.values[pos] = values[k];
    }
  }
  return t;
}

void CsrMatrix::validate() const {
  if (row_offsets.size() != n_rows + 1) {
    throw std::invalid_argument("CsrMatrix: row_offsets size mismatch");
  }
  if (row_offsets.front() != 0 ||
      row_offsets.back() != static_cast<std::int64_t>(nnz())) {
    throw std::invalid_argument("CsrMatrix: row_offsets endpoints invalid");
  }
  if (col_indices.size() != values.size()) {
    throw std::invalid_argument("CsrMatrix: col/value size mismatch");
  }
  for (std::size_t r = 0; r < n_rows; ++r) {
    if (row_offsets[r] > row_offsets[r + 1]) {
      throw std::invalid_argument("CsrMatrix: row_offsets not monotone");
    }
  }
  for (std::uint32_t c : col_indices) {
    if (c >= n_cols) throw std::invalid_argument("CsrMatrix: col out of range");
  }
}

CsrMatrix csr_from_coo(std::size_t n_rows, std::size_t n_cols,
                       std::span<const std::uint32_t> rows,
                       std::span<const std::uint32_t> cols,
                       std::span<const float> values) {
  if (rows.size() != cols.size() || rows.size() != values.size()) {
    throw std::invalid_argument("csr_from_coo: triplet arrays differ in size");
  }
  const std::size_t nnz = rows.size();
  std::vector<std::size_t> order(nnz);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (rows[x] != rows[y]) return rows[x] < rows[y];
    return cols[x] < cols[y];
  });

  CsrMatrix m;
  m.n_rows = n_rows;
  m.n_cols = n_cols;
  m.col_indices.reserve(nnz);
  m.values.reserve(nnz);
  std::vector<std::uint32_t> kept_rows;
  kept_rows.reserve(nnz);
  for (std::size_t idx : order) {
    if (rows[idx] >= n_rows || cols[idx] >= n_cols) {
      throw std::invalid_argument("csr_from_coo: index out of range");
    }
    if (!kept_rows.empty() && kept_rows.back() == rows[idx] &&
        m.col_indices.back() == cols[idx]) {
      m.values.back() += values[idx];  // merge duplicate (row, col)
      continue;
    }
    kept_rows.push_back(rows[idx]);
    m.col_indices.push_back(cols[idx]);
    m.values.push_back(values[idx]);
  }
  m.row_offsets.assign(n_rows + 1, 0);
  for (std::uint32_t r : kept_rows) m.row_offsets[r + 1]++;
  std::partial_sum(m.row_offsets.begin(), m.row_offsets.end(),
                   m.row_offsets.begin());
  m.validate();
  return m;
}

void spmm(const CsrMatrix& a, const Tensor& x, Tensor& out, bool accumulate) {
  CKAT_KERNEL_SCOPE("spmm");
  if (x.rows() != a.n_cols) {
    throw std::invalid_argument("spmm: X rows must equal A cols");
  }
  if (out.rows() != a.n_rows || out.cols() != x.cols()) {
    throw std::invalid_argument("spmm: output shape mismatch");
  }
  if (!accumulate) out.zero();
  const std::size_t d = x.cols();
  const float* px = x.data();
  float* po = out.data();
#pragma omp parallel for schedule(dynamic, 64) if (a.nnz() * d > 65536)
  for (std::size_t r = 0; r < a.n_rows; ++r) {
    float* orow = po + r * d;
    for (std::int64_t k = a.row_offsets[r]; k < a.row_offsets[r + 1]; ++k) {
      const float v = a.values[k];
      const float* xrow = px + static_cast<std::size_t>(a.col_indices[k]) * d;
      for (std::size_t j = 0; j < d; ++j) orow[j] += v * xrow[j];
    }
  }
}

}  // namespace ckat::nn
