// Connectivity-path search over the CKG -- the machinery behind the
// paper's Fig. 1/2 story ("Object #1 -dataType-> Pressure
// -dataDiscipline-> Physical <-dataDiscipline- Density <-dataType-
// Object #2") turned into a library feature: explaining *why* an item
// was recommended to a user by exhibiting the knowledge paths that
// connect them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/ckg.hpp"

namespace ckat::graph {

/// One hop of an explanation path.
struct PathStep {
  std::uint32_t relation = 0;  // canonical relation id
  bool inverse = false;        // traversed tail -> head
  std::uint32_t entity = 0;    // entity reached by this step
};

/// A path from `start` through `steps` (start -> steps[0].entity -> ...).
struct KgPath {
  std::uint32_t start = 0;
  std::vector<PathStep> steps;

  [[nodiscard]] std::size_t length() const noexcept { return steps.size(); }
  [[nodiscard]] std::uint32_t end() const {
    return steps.empty() ? start : steps.back().entity;
  }
};

struct PathSearchOptions {
  std::size_t max_hops = 4;
  std::size_t max_paths = 5;
  /// Safety cap on DFS state expansions (popular entities have huge
  /// degree; the search stays bounded regardless of graph shape).
  std::size_t max_expansions = 200000;
  /// Allow "interact" edges only as the FIRST hop (the user's own
  /// history); all later hops must be knowledge relations, so paths
  /// read like Fig. 1's attribute chains.
  bool knowledge_intermediate_only = false;
};

/// Enumerates up to max_paths simple paths (no repeated entity) from
/// `source` to `target`, shortest first. Deterministic.
std::vector<KgPath> find_paths(const CollaborativeKg& ckg,
                               std::uint32_t source, std::uint32_t target,
                               const PathSearchOptions& options = {});

/// Renders a path like
///   user#3 -interact-> item#10 -dataType-> type:Pressure <-dataType- item#4
std::string format_path(const CollaborativeKg& ckg, const KgPath& path);

}  // namespace ckat::graph
