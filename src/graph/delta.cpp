// CollaborativeKg::apply_delta — streaming growth of the CKG.
//
// Corruption classes rejected here (stable check ids, mirrored by
// tests/graph/ckg_delta_test.cpp):
//   delta.duplicate_alignment  declared-new attribute/relation name that
//                              already exists in the vocab, or repeats
//                              within the delta
//   delta.unknown_relation     knowledge fact under a relation neither
//                              in the vocab nor declared new
//   delta.unknown_attribute    knowledge fact referencing an attribute
//                              neither in the vocab nor declared new
//   delta.reserved_relation    knowledge fact under "interact" (relation
//                              0 is G1/G3-only by the layout contract)
//   delta.id_range             user/item id outside the post-delta id
//                              space
//   delta.injected             ingest.bad_delta fault fired (chaos runs)
//
// Validation is complete before any mutation: a throw leaves the graph
// bit-identical to its pre-call state (strong exception guarantee).
#include <algorithm>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "graph/ckg.hpp"
#include "util/contract.hpp"
#include "util/fault.hpp"
#if defined(CKAT_VALIDATE)
#include "graph/validator.hpp"
#endif

namespace ckat::graph {

namespace {

[[noreturn]] void reject(const std::string& check, const std::string& detail) {
  throw std::invalid_argument("apply_delta[" + check + "]: " + detail);
}

/// Sorts/dedups `additions` and splices them into the sorted `dst`
/// without re-sorting the existing prefix; returns the net growth.
std::size_t merge_sorted(std::vector<Triple>& dst,
                         std::vector<Triple> additions) {
  std::sort(additions.begin(), additions.end());
  additions.erase(std::unique(additions.begin(), additions.end()),
                  additions.end());
  const std::size_t before = dst.size();
  const auto middle = static_cast<std::ptrdiff_t>(before);
  dst.insert(dst.end(), additions.begin(), additions.end());
  std::inplace_merge(dst.begin(), dst.begin() + middle, dst.end());
  dst.erase(std::unique(dst.begin(), dst.end()), dst.end());
  return dst.size() - before;
}

}  // namespace

std::uint32_t CollaborativeKg::find_entity(const std::string& name) const {
  constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;
  auto parse_index = [](const std::string& text, std::size_t limit,
                        std::uint32_t& out) {
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos) {
      return false;
    }
    const unsigned long long value = std::stoull(text);
    if (value >= limit) return false;
    out = static_cast<std::uint32_t>(value);
    return true;
  };
  std::uint32_t index = 0;
  if (name.rfind("user#", 0) == 0) {
    if (!parse_index(name.substr(5), n_users_, index)) return kAbsent;
    return user_entity(index);
  }
  if (name.rfind("item#", 0) == 0) {
    if (!parse_index(name.substr(5), n_items_, index)) return kAbsent;
    return item_entity(index);
  }
  const std::uint32_t attr = attributes_.find(name);
  if (attr == kAbsent) return kAbsent;
  return static_cast<std::uint32_t>(n_users_ + n_items_) + attr;
}

DeltaStats CollaborativeKg::apply_delta(const CkgDelta& delta) {
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fire(util::fault_points::kIngestBadDelta)) {
    reject("delta.injected", "injected fault: ingest.bad_delta");
  }

  const std::size_t new_n_users = n_users_ + delta.n_new_users;
  const std::size_t new_n_items = n_items_ + delta.n_new_items;

  // -- Phase 1: validate everything against (vocab + declarations);
  // nothing below this block runs unless the whole delta is admissible.
  std::unordered_set<std::string> pending_attributes;
  for (const std::string& name : delta.new_attributes) {
    if (attributes_.contains(name)) {
      reject("delta.duplicate_alignment",
             "new attribute '" + name + "' already in the vocab");
    }
    if (!pending_attributes.insert(name).second) {
      reject("delta.duplicate_alignment",
             "attribute '" + name + "' declared twice");
    }
  }
  std::unordered_set<std::string> pending_relations;
  for (const std::string& name : delta.new_relations) {
    if (relations_.contains(name)) {
      reject("delta.duplicate_alignment",
             "new relation '" + name + "' already in the vocab");
    }
    if (!pending_relations.insert(name).second) {
      reject("delta.duplicate_alignment",
             "relation '" + name + "' declared twice");
    }
  }
  auto attribute_known = [&](const std::string& name) {
    return attributes_.contains(name) || pending_attributes.count(name) > 0;
  };
  for (const CkgDelta::Knowledge& k : delta.knowledge) {
    if (k.relation == "interact") {
      reject("delta.reserved_relation",
             "knowledge fact under relation 0 ('interact')");
    }
    if (!relations_.contains(k.relation) &&
        pending_relations.count(k.relation) == 0) {
      reject("delta.unknown_relation", "'" + k.relation + "'");
    }
    if (!attribute_known(k.attribute)) {
      reject("delta.unknown_attribute", "tail '" + k.attribute + "'");
    }
    if (k.head_attribute.empty()) {
      if (k.item >= new_n_items) {
        reject("delta.id_range",
               "knowledge head item " + std::to_string(k.item) + " >= " +
                   std::to_string(new_n_items));
      }
    } else if (!attribute_known(k.head_attribute)) {
      reject("delta.unknown_attribute", "head '" + k.head_attribute + "'");
    }
  }
  for (const Interaction& x : delta.interactions) {
    if (x.user >= new_n_users || x.item >= new_n_items) {
      reject("delta.id_range",
             "interaction (" + std::to_string(x.user) + ", " +
                 std::to_string(x.item) + ") outside " +
                 std::to_string(new_n_users) + " x " +
                 std::to_string(new_n_items));
    }
  }
  for (const auto& [a, b] : delta.user_user_pairs) {
    if (a >= new_n_users || b >= new_n_users) {
      reject("delta.id_range", "user pair (" + std::to_string(a) + ", " +
                                   std::to_string(b) + ") outside " +
                                   std::to_string(new_n_users) + " users");
    }
  }

  // -- Phase 2: grow the id space. The remap is strictly monotone in
  // the entity id (users fixed, items +n_new_users, attributes
  // +n_new_users+n_new_items), and Triple orders by (head, relation,
  // tail), so the sorted triple arrays stay sorted — merge, not resort.
  DeltaStats stats;
  stats.users_added = delta.n_new_users;
  stats.items_added = delta.n_new_items;
  stats.relations_added = delta.new_relations.size();
  stats.attributes_added = delta.new_attributes.size();

  const std::uint32_t old_item_base = static_cast<std::uint32_t>(n_users_);
  const std::uint32_t old_attr_base =
      static_cast<std::uint32_t>(n_users_ + n_items_);
  const std::uint32_t item_shift = delta.n_new_users;
  const std::uint32_t attr_shift = delta.n_new_users + delta.n_new_items;
  if (attr_shift != 0) {
    auto remap = [&](std::uint32_t e) {
      if (e >= old_attr_base) return e + attr_shift;
      if (e >= old_item_base) return e + item_shift;
      return e;
    };
    auto remap_all = [&](std::vector<Triple>& v) {
      for (Triple& t : v) {
        t.head = remap(t.head);
        t.tail = remap(t.tail);
      }
    };
    remap_all(triples_);
    remap_all(knowledge_triples_);
    stats.entities_remapped =
        (item_shift != 0 ? n_items_ : 0) + attributes_.size();
  }

  n_users_ = new_n_users;
  n_items_ = new_n_items;
  for (const std::string& name : delta.new_relations) relations_.intern(name);
  for (const std::string& name : delta.new_attributes) {
    attributes_.intern(name);
  }
  n_entities_ = n_users_ + n_items_ + attributes_.size();

  // -- Phase 3: build the new edges in post-delta ids and merge them in.
  const auto attr_base = static_cast<std::uint32_t>(n_users_ + n_items_);
  auto attribute_entity = [&](const std::string& name) {
    return attr_base + attributes_.id(name);
  };

  std::vector<Triple> added;
  std::vector<Triple> added_knowledge;
  added.reserve(delta.interactions.size() + delta.user_user_pairs.size() +
                delta.knowledge.size());
  for (const Interaction& x : delta.interactions) {
    added.push_back(
        Triple{user_entity(x.user), interact_relation(), item_entity(x.item)});
  }
  for (const auto& [a, b] : delta.user_user_pairs) {
    Triple t{user_entity(a), interact_relation(), user_entity(b)};
    added.push_back(t);
    added_knowledge.push_back(t);
  }
  for (const CkgDelta::Knowledge& k : delta.knowledge) {
    const std::uint32_t head = k.head_attribute.empty()
                                   ? item_entity(k.item)
                                   : attribute_entity(k.head_attribute);
    Triple t{head, relations_.id(k.relation), attribute_entity(k.attribute)};
    added.push_back(t);
    added_knowledge.push_back(t);
  }
  stats.triples_added = merge_sorted(triples_, std::move(added));
  stats.knowledge_triples_added =
      merge_sorted(knowledge_triples_, std::move(added_knowledge));

#if defined(CKAT_VALIDATE)
  // Streaming-merge boundary: same contract as construction — segment
  // alignment, vocab ranges and knowledge ⊆ triples must survive the
  // remap + merge before any model consumes the grown graph.
  const auto issues = CkgValidator::validate(*this);
  CKAT_CHECK_INVARIANT(issues.empty(),
                       "apply_delta: " + format_issues(issues));
#endif
  return stats;
}

}  // namespace ckat::graph
