// User-item interaction data: the user-item bipartite graph G1 of
// Sec. IV, split into train and test sets (80/20 per user, Sec. VI.A),
// plus negative sampling support for BPR training.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace ckat::graph {

struct Interaction {
  std::uint32_t user = 0;
  std::uint32_t item = 0;
};

class InteractionSet {
 public:
  InteractionSet(std::size_t n_users, std::size_t n_items)
      : n_users_(n_users), n_items_(n_items), by_user_(n_users) {}

  void add(std::uint32_t user, std::uint32_t item);

  [[nodiscard]] std::size_t n_users() const noexcept { return n_users_; }
  [[nodiscard]] std::size_t n_items() const noexcept { return n_items_; }
  [[nodiscard]] std::size_t size() const noexcept { return pairs_.size(); }

  [[nodiscard]] std::span<const Interaction> pairs() const noexcept {
    return pairs_;
  }
  [[nodiscard]] std::span<const std::uint32_t> items_of(
      std::uint32_t user) const {
    return by_user_.at(user);
  }

  /// Sorts each user's item list and removes duplicates (both in the
  /// per-user lists and in the flat pair list).
  void finalize();

  [[nodiscard]] bool contains(std::uint32_t user, std::uint32_t item) const;

  /// Uniformly samples an item the user has NOT interacted with.
  /// Requires the set to be finalized and the user to have at least one
  /// non-interacted item.
  [[nodiscard]] std::uint32_t sample_negative(std::uint32_t user,
                                              util::Rng& rng) const;

 private:
  std::size_t n_users_;
  std::size_t n_items_;
  std::vector<Interaction> pairs_;
  std::vector<std::vector<std::uint32_t>> by_user_;
  bool finalized_ = false;
};

/// Train/test split of one facility's interactions.
struct InteractionSplit {
  InteractionSplit(std::size_t n_users, std::size_t n_items)
      : train(n_users, n_items), test(n_users, n_items) {}

  InteractionSet train;
  InteractionSet test;
};

/// Randomly assigns `train_fraction` of each user's items to the train
/// set and the rest to test (per-user split, Sec. VI.A). Users with a
/// single item keep it in train.
InteractionSplit split_interactions(const InteractionSet& all,
                                    double train_fraction, util::Rng& rng);

}  // namespace ckat::graph
