#include "graph/interactions.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ckat::graph {

void InteractionSet::add(std::uint32_t user, std::uint32_t item) {
  if (user >= n_users_) {
    throw std::out_of_range("InteractionSet::add: user out of range");
  }
  if (item >= n_items_) {
    throw std::out_of_range("InteractionSet::add: item out of range");
  }
  by_user_[user].push_back(item);
  finalized_ = false;
}

void InteractionSet::finalize() {
  pairs_.clear();
  for (std::uint32_t u = 0; u < n_users_; ++u) {
    auto& items = by_user_[u];
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    for (std::uint32_t item : items) pairs_.push_back(Interaction{u, item});
  }
  finalized_ = true;
}

bool InteractionSet::contains(std::uint32_t user, std::uint32_t item) const {
  const auto& items = by_user_.at(user);
  if (finalized_) {
    return std::binary_search(items.begin(), items.end(), item);
  }
  return std::find(items.begin(), items.end(), item) != items.end();
}

std::uint32_t InteractionSet::sample_negative(std::uint32_t user,
                                              util::Rng& rng) const {
  if (!finalized_) {
    throw std::logic_error("sample_negative: finalize() the set first");
  }
  const auto& positives = by_user_.at(user);
  if (positives.size() >= n_items_) {
    throw std::logic_error("sample_negative: user interacted with every item");
  }
  // Rejection sampling; positives are a small fraction of the catalog.
  for (;;) {
    const auto candidate =
        static_cast<std::uint32_t>(rng.uniform_index(n_items_));
    if (!std::binary_search(positives.begin(), positives.end(), candidate)) {
      return candidate;
    }
  }
}

InteractionSplit split_interactions(const InteractionSet& all,
                                    double train_fraction, util::Rng& rng) {
  if (train_fraction <= 0.0 || train_fraction > 1.0) {
    throw std::invalid_argument("split_interactions: fraction in (0,1]");
  }
  InteractionSplit split(all.n_users(), all.n_items());
  for (std::uint32_t u = 0; u < all.n_users(); ++u) {
    auto items_span = all.items_of(u);
    std::vector<std::uint32_t> items(items_span.begin(), items_span.end());
    rng.shuffle(items);
    // ceil so every active user keeps at least one training item.
    const auto n_train = static_cast<std::size_t>(
        std::max<double>(1.0, std::ceil(train_fraction *
                                        static_cast<double>(items.size()))));
    for (std::size_t i = 0; i < items.size(); ++i) {
      (i < n_train ? split.train : split.test).add(u, items[i]);
    }
  }
  split.train.finalize();
  split.test.finalize();
  return split;
}

}  // namespace ckat::graph
