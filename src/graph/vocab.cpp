#include "graph/vocab.hpp"

#include <limits>
#include <stdexcept>

namespace ckat::graph {

std::uint32_t Vocab::intern(const std::string& name) {
  const auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const auto new_id = static_cast<std::uint32_t>(names_.size());
  index_.emplace(name, new_id);
  names_.push_back(name);
  return new_id;
}

std::uint32_t Vocab::id(const std::string& name) const {
  const auto it = index_.find(name);
  if (it == index_.end()) {
    throw std::out_of_range("Vocab: unknown name '" + name + "'");
  }
  return it->second;
}

std::uint32_t Vocab::find(const std::string& name) const noexcept {
  const auto it = index_.find(name);
  return it == index_.end() ? std::numeric_limits<std::uint32_t>::max()
                            : it->second;
}

const std::string& Vocab::name(std::uint32_t id) const {
  if (id >= names_.size()) throw std::out_of_range("Vocab: id out of range");
  return names_[id];
}

bool Vocab::contains(const std::string& name) const noexcept {
  return index_.count(name) > 0;
}

}  // namespace ckat::graph
