// Append-only streaming updates to a CollaborativeKg.
//
// A CkgDelta is one window of newly-arrived facility activity: users and
// items appended to the dense id space, fresh interactions/co-location
// pairs, and knowledge facts for the new items. Attribute entities and
// relations are referenced *by name* so the producer (a trace stream, an
// ingest daemon) never needs to know the consumer's current vocabulary —
// CollaborativeKg::apply_delta aligns names against the existing vocab
// and appends the genuinely-new ones, exactly like the initial
// construction does across knowledge sources.
//
// The entity-id contract (ckg.hpp: [users | items | attributes]) makes
// growth a *monotone* remap: users keep their ids, every existing item
// id shifts up by n_new_users, every existing attribute id shifts up by
// n_new_users + n_new_items. Entity names are stable under this remap
// ("user#3" stays "user#3"), which is what lets a warm-started model
// (core/ckat.hpp) carry embedding rows across refresh cycles by name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/interactions.hpp"

namespace ckat::graph {

/// One append-only ingestion window. All user/item ids are in the
/// *post-delta* id space: an existing user keeps its id, the i-th new
/// user is `old_n_users + i` (same for items).
struct CkgDelta {
  /// Producer-assigned window number (diagnostics only).
  std::uint64_t sequence = 0;

  /// Cold-start entities appended to the id space this window.
  std::uint32_t n_new_users = 0;
  std::uint32_t n_new_items = 0;

  /// Names this delta introduces. apply_delta rejects a declared-new
  /// name that already exists (or repeats) — a "duplicate alignment" is
  /// how an out-of-sync producer corrupts the entity layout silently.
  std::vector<std::string> new_relations;
  std::vector<std::string> new_attributes;

  /// New user-item interactions (G1 edges, post-delta ids).
  std::vector<Interaction> interactions;
  /// New same-location user pairs (G3 edges, post-delta ids).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> user_user_pairs;

  /// One knowledge fact (G2 edge). The head is either an item (when
  /// `head_attribute` is empty) or an attribute entity by name; the tail
  /// is always an attribute by name. Every referenced attribute /
  /// relation must exist in the CKG vocab or be declared above.
  struct Knowledge {
    std::string head_attribute;  // "" = head is `item`
    std::uint32_t item = 0;
    std::string relation;
    std::string attribute;
  };
  std::vector<Knowledge> knowledge;

  [[nodiscard]] bool empty() const noexcept {
    return n_new_users == 0 && n_new_items == 0 && interactions.empty() &&
           user_user_pairs.empty() && knowledge.empty() &&
           new_relations.empty() && new_attributes.empty();
  }
};

/// What one apply_delta call changed, for logs/metrics and the soak's
/// conservation bookkeeping.
struct DeltaStats {
  std::size_t users_added = 0;
  std::size_t items_added = 0;
  std::size_t attributes_added = 0;
  std::size_t relations_added = 0;
  /// Net new rows in triples() / knowledge_triples() after dedup.
  std::size_t triples_added = 0;
  std::size_t knowledge_triples_added = 0;
  /// Existing entity ids shifted by the monotone growth remap.
  std::size_t entities_remapped = 0;
};

}  // namespace ckat::graph
