#include "graph/adjacency.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/contract.hpp"
#if defined(CKAT_VALIDATE)
#include "graph/validator.hpp"
#endif

namespace ckat::graph {

Adjacency::Adjacency(std::span<const Triple> triples, std::size_t n_entities,
                     std::size_t n_relations, bool add_inverse) {
  n_relations_ = add_inverse ? 2 * n_relations : n_relations;
  const std::size_t n_edges =
      add_inverse ? 2 * triples.size() : triples.size();
  heads_.reserve(n_edges);
  relations_.reserve(n_edges);
  tails_.reserve(n_edges);

  for (const Triple& t : triples) {
    if (t.head >= n_entities || t.tail >= n_entities) {
      throw std::out_of_range("Adjacency: entity id out of range");
    }
    if (t.relation >= n_relations) {
      throw std::out_of_range("Adjacency: relation id out of range");
    }
    heads_.push_back(t.head);
    relations_.push_back(t.relation);
    tails_.push_back(t.tail);
    if (add_inverse) {
      heads_.push_back(t.tail);
      relations_.push_back(t.relation + static_cast<std::uint32_t>(n_relations));
      tails_.push_back(t.head);
    }
  }

  // Counting sort by head keeps construction O(E + V) and deterministic.
  offsets_.assign(n_entities + 1, 0);
  for (std::uint32_t h : heads_) offsets_[h + 1]++;
  std::partial_sum(offsets_.begin(), offsets_.end(), offsets_.begin());

  std::vector<std::uint32_t> sorted_heads(heads_.size());
  std::vector<std::uint32_t> sorted_relations(relations_.size());
  std::vector<std::uint32_t> sorted_tails(tails_.size());
  std::vector<std::int64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (std::size_t e = 0; e < heads_.size(); ++e) {
    const std::int64_t pos = cursor[heads_[e]]++;
    sorted_heads[pos] = heads_[e];
    sorted_relations[pos] = relations_[e];
    sorted_tails[pos] = tails_[e];
  }
  heads_ = std::move(sorted_heads);
  relations_ = std::move(sorted_relations);
  tails_ = std::move(sorted_tails);

#if defined(CKAT_VALIDATE)
  // Subgraph-merge boundary: the counting sort above is the only place
  // the CSR layout is established, so a bug here corrupts every
  // propagation pass downstream.
  const auto issues = CkgValidator::validate(*this);
  CKAT_CHECK_INVARIANT(issues.empty(),
                       "Adjacency CSR: " + format_issues(issues));
#endif
}

}  // namespace ckat::graph
