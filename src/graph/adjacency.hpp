// Head-grouped edge arrays for the propagation models.
//
// The CKAT propagation (Eq. 3) sums attention-weighted neighbor
// embeddings per head entity: this layout stores all edges sorted by
// head with CSR-style offsets, so segment ops (softmax over a head's
// edges, weighted scatter-add) are contiguous.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/triple_store.hpp"

namespace ckat::graph {

class Adjacency {
 public:
  /// Builds edge arrays from triples over `n_entities` entities.
  /// If `add_inverse` is set, each (h, r, t) also contributes
  /// (t, inverse(r), h) where inverse(r) = r + n_relations (the paper's
  /// canonical/inverse relation convention, Sec. IV).
  Adjacency(std::span<const Triple> triples, std::size_t n_entities,
            std::size_t n_relations, bool add_inverse);

  [[nodiscard]] std::size_t n_entities() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t n_edges() const noexcept { return tails_.size(); }
  /// Relation count after inverse augmentation.
  [[nodiscard]] std::size_t n_relations() const noexcept { return n_relations_; }

  /// Edge arrays, sorted by head; edge e has head heads()[e] etc.
  [[nodiscard]] std::span<const std::uint32_t> heads() const noexcept { return heads_; }
  [[nodiscard]] std::span<const std::uint32_t> relations() const noexcept { return relations_; }
  [[nodiscard]] std::span<const std::uint32_t> tails() const noexcept { return tails_; }

  /// offsets()[h] .. offsets()[h+1] is the edge range of head h.
  [[nodiscard]] std::span<const std::int64_t> offsets() const noexcept { return offsets_; }

  /// Out-degree of a head entity.
  [[nodiscard]] std::size_t degree(std::uint32_t head) const {
    return static_cast<std::size_t>(offsets_[head + 1] - offsets_[head]);
  }

  /// Edges of one head as index range [begin, end).
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> edge_range(
      std::uint32_t head) const {
    return {offsets_[head], offsets_[head + 1]};
  }

 private:
  std::size_t n_relations_ = 0;
  std::vector<std::uint32_t> heads_;
  std::vector<std::uint32_t> relations_;
  std::vector<std::uint32_t> tails_;
  std::vector<std::int64_t> offsets_;
};

}  // namespace ckat::graph
