#include "graph/paths.hpp"

#include <algorithm>
#include <stdexcept>

namespace ckat::graph {

namespace {

struct SearchState {
  const CollaborativeKg& ckg;
  const Adjacency& adjacency;
  const PathSearchOptions& options;
  std::uint32_t target;
  std::size_t exact_depth = 0;  // only record paths of this length
  std::vector<KgPath> found;
  std::vector<std::uint8_t> on_path;
  KgPath current;
  std::size_t expansions = 0;

  SearchState(const CollaborativeKg& g, const Adjacency& adj,
              const PathSearchOptions& opt, std::uint32_t tgt)
      : ckg(g),
        adjacency(adj),
        options(opt),
        target(tgt),
        on_path(g.n_entities(), 0) {}

  /// Depth-limited DFS; with iterative deepening from the caller this
  /// yields shortest paths first.
  void dfs(std::uint32_t node, std::size_t remaining_hops) {
    if (found.size() >= options.max_paths ||
        expansions >= options.max_expansions) {
      return;
    }
    if (node == target && !current.steps.empty()) {
      if (current.steps.size() == exact_depth) found.push_back(current);
      return;  // simple paths cannot re-leave the target
    }
    if (remaining_hops == 0) return;

    const auto [begin, end] = adjacency.edge_range(node);
    for (std::int64_t e = begin; e < end; ++e) {
      ++expansions;
      if (expansions >= options.max_expansions) return;
      const std::uint32_t next = adjacency.tails()[e];
      if (on_path[next]) continue;
      const std::uint32_t relation_with_inverse = adjacency.relations()[e];
      const bool inverse = relation_with_inverse >= ckg.n_relations();
      const std::uint32_t relation =
          inverse ? relation_with_inverse -
                        static_cast<std::uint32_t>(ckg.n_relations())
                  : relation_with_inverse;

      // Optionally allow interact edges only as the first hop (the
      // user's own history); everything after must be knowledge, so the
      // path reads like Fig. 1's attribute chain.
      if (options.knowledge_intermediate_only &&
          relation == CollaborativeKg::interact_relation() &&
          !current.steps.empty()) {
        continue;
      }

      on_path[next] = 1;
      current.steps.push_back(PathStep{relation, inverse, next});
      dfs(next, remaining_hops - 1);
      current.steps.pop_back();
      on_path[next] = 0;
      if (found.size() >= options.max_paths) return;
    }
  }
};

}  // namespace

std::vector<KgPath> find_paths(const CollaborativeKg& ckg,
                               std::uint32_t source, std::uint32_t target,
                               const PathSearchOptions& options) {
  if (source >= ckg.n_entities() || target >= ckg.n_entities()) {
    throw std::out_of_range("find_paths: entity id out of range");
  }
  if (options.max_hops == 0 || options.max_paths == 0) {
    return {};
  }

  const Adjacency adjacency = ckg.build_adjacency();
  std::vector<KgPath> all;
  // Iterative deepening: collect paths of exactly `depth` hops so
  // shorter explanations come first; dedup against already-found paths
  // is implicit (a path of length L is only found at depth L).
  for (std::size_t depth = 1;
       depth <= options.max_hops && all.size() < options.max_paths; ++depth) {
    SearchState state(ckg, adjacency, options, target);
    state.exact_depth = depth;
    state.current.start = source;
    state.on_path[source] = 1;
    state.dfs(source, depth);
    for (const KgPath& path : state.found) {
      if (all.size() >= options.max_paths) break;
      all.push_back(path);
    }
  }
  return all;
}

std::string format_path(const CollaborativeKg& ckg, const KgPath& path) {
  std::string out = ckg.entity_name(path.start);
  for (const PathStep& step : path.steps) {
    const std::string& relation = ckg.relations().name(step.relation);
    if (step.inverse) {
      out += " <-" + relation + "- ";
    } else {
      out += " -" + relation + "-> ";
    }
    out += ckg.entity_name(step.entity);
  }
  return out;
}

}  // namespace ckat::graph
