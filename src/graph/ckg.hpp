// Collaborative knowledge graph (Sec. IV): the entity-aligned union of
//   G1  user-item bipartite graph (UIG, train interactions only),
//   G3  user-user bipartite graph (UUG, same-location users),
//   G2  item-attribute knowledge graph (IAG), decomposed into named
//       knowledge sources (LOC, DKG, MD) so Table III's combinations can
//       be built by selecting subsets.
//
// Entity id layout (dense, stable):
//   [0, n_users)                         users
//   [n_users, n_users + n_items)         items
//   [n_users + n_items, n_entities)      attribute entities
//
// Relation 0 is always "interact" (covering both user-item and user-user
// links, as in the paper); knowledge-source relations follow. Inverse
// relations are materialized by graph::Adjacency, not stored here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/delta.hpp"
#include "graph/interactions.hpp"
#include "graph/triple_store.hpp"

namespace ckat::graph {

/// One named block of auxiliary knowledge (e.g. instrument location).
struct KnowledgeSource {
  std::string name;

  /// (item, relation, attribute-entity) facts, e.g.
  /// (object #17, "locatedAt", "Axial Base").
  struct ItemTriple {
    std::uint32_t item;
    std::string relation;
    std::string attribute;
  };

  /// (attribute, relation, attribute) facts between attribute entities,
  /// e.g. ("Pressure", "dataDiscipline", "Physical").
  struct AttributeTriple {
    std::string head;
    std::string relation;
    std::string tail;
  };

  std::vector<ItemTriple> item_triples;
  std::vector<AttributeTriple> attribute_triples;
};

/// Selection of what goes into the CKG (Table III rows).
struct CkgOptions {
  bool include_user_user = true;
  std::vector<std::string> sources;  // names of KnowledgeSources to include
};

class CollaborativeKg {
 public:
  /// Builds the CKG from train interactions, user co-location pairs and
  /// the selected knowledge sources.
  CollaborativeKg(const InteractionSet& train_interactions,
                  const std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                      user_user_pairs,
                  const std::vector<KnowledgeSource>& sources,
                  const CkgOptions& options);

  [[nodiscard]] std::size_t n_users() const noexcept { return n_users_; }
  [[nodiscard]] std::size_t n_items() const noexcept { return n_items_; }
  [[nodiscard]] std::size_t n_entities() const noexcept { return n_entities_; }
  /// Canonical relation count (without inverses); >= 1 ("interact").
  [[nodiscard]] std::size_t n_relations() const noexcept {
    return relations_.size();
  }

  [[nodiscard]] std::uint32_t user_entity(std::uint32_t user) const {
    return user;
  }
  [[nodiscard]] std::uint32_t item_entity(std::uint32_t item) const {
    return static_cast<std::uint32_t>(n_users_) + item;
  }
  [[nodiscard]] static constexpr std::uint32_t interact_relation() {
    return 0;
  }

  [[nodiscard]] const Vocab& relations() const noexcept { return relations_; }

  /// All canonical-direction triples (interact + knowledge).
  [[nodiscard]] const std::vector<Triple>& triples() const noexcept {
    return triples_;
  }
  /// Knowledge triples only (UUG + IAG), for Table I statistics and
  /// TransR training on the KG part.
  [[nodiscard]] const std::vector<Triple>& knowledge_triples() const noexcept {
    return knowledge_triples_;
  }

  /// Full adjacency over all triples, inverse relations added.
  [[nodiscard]] Adjacency build_adjacency() const {
    return Adjacency(triples_, n_entities_, relations_.size(),
                     /*add_inverse=*/true);
  }

  /// Table I row: entities, canonical relations, knowledge triples, and
  /// average knowledge links per item.
  [[nodiscard]] KgStats stats() const;

  /// Name of attribute entity id (for debugging/examples); users/items
  /// get synthesized names.
  [[nodiscard]] std::string entity_name(std::uint32_t entity) const;

  /// Id of the entity with `name` ("user#i" / "item#j" / attribute
  /// name), or UINT32_MAX when absent. Inverse of entity_name().
  [[nodiscard]] std::uint32_t find_entity(const std::string& name) const;

  /// Applies one append-only ingestion window (delta.hpp) in place:
  /// appends new users/items/attributes/relations, shifts existing
  /// item/attribute ids by the monotone growth remap, and merges the
  /// new edges into the sorted triple arrays.
  ///
  /// The triple arrays stay sorted without a full re-sort: the remap
  /// preserves their order, so only the delta's own edges are sorted
  /// (O(d log d)) and spliced in with one in-place merge pass — the CSR
  /// any consumer builds next only reorders where segments actually
  /// changed. Validation is all-or-nothing: a rejected delta (thrown as
  /// std::invalid_argument with a stable `delta.*` check id, see
  /// delta.cpp) leaves the graph untouched, so a serving snapshot can
  /// keep using it. Under -DCKAT_VALIDATE the merged graph re-runs the
  /// full CkgValidator contract from construction.
  ///
  /// NOTE: apply_delta invalidates the entity ids held by anything built
  /// from this graph (models, adjacencies). Serving-path consumers must
  /// copy the graph per model version (see serve/refresh.hpp) instead of
  /// mutating a shared instance.
  DeltaStats apply_delta(const CkgDelta& delta);

 private:
  std::size_t n_users_ = 0;
  std::size_t n_items_ = 0;
  std::size_t n_entities_ = 0;
  Vocab relations_;
  Vocab attributes_;  // attribute entities, ids offset by n_users + n_items
  std::vector<Triple> triples_;
  std::vector<Triple> knowledge_triples_;
};

}  // namespace ckat::graph
