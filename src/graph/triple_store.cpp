#include "graph/triple_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/contract.hpp"
#if defined(CKAT_VALIDATE)
#include "graph/validator.hpp"
#endif

namespace ckat::graph {

namespace {
struct TripleHash {
  std::size_t operator()(const Triple& t) const noexcept {
    std::size_t h = t.head;
    h = h * 1000003u ^ t.relation;
    h = h * 1000003u ^ t.tail;
    return h;
  }
};
}  // namespace

void TripleStore::add(const std::string& head, const std::string& relation,
                      const std::string& tail) {
  triples_.push_back(Triple{entities_.intern(head), relations_.intern(relation),
                            entities_.intern(tail)});
}

void TripleStore::add(std::uint32_t head, std::uint32_t relation,
                      std::uint32_t tail) {
  if (head >= entities_.size() || tail >= entities_.size()) {
    throw std::out_of_range("TripleStore::add: entity id out of range");
  }
  if (relation >= relations_.size()) {
    throw std::out_of_range("TripleStore::add: relation id out of range");
  }
  triples_.push_back(Triple{head, relation, tail});
}

void TripleStore::deduplicate() {
  std::unordered_set<Triple, TripleHash> seen;
  std::vector<Triple> unique;
  unique.reserve(triples_.size());
  for (const Triple& t : triples_) {
    if (seen.insert(t).second) unique.push_back(t);
  }
  triples_ = std::move(unique);
}

KgStats TripleStore::stats(std::span<const std::uint32_t> items) const {
  KgStats s;
  s.n_entities = entities_.size();
  s.n_relations = relations_.size();
  s.n_triples = triples_.size();

  if (items.empty()) {
    if (!entities_.names().empty()) {
      s.avg_links_per_item = static_cast<double>(2 * triples_.size()) /
                             static_cast<double>(entities_.size());
    }
    return s;
  }

  std::vector<std::size_t> degree(entities_.size(), 0);
  for (const Triple& t : triples_) {
    degree[t.head]++;
    degree[t.tail]++;
  }
  std::size_t total = 0;
  for (std::uint32_t item : items) {
    if (item >= degree.size()) {
      throw std::out_of_range("TripleStore::stats: item id out of range");
    }
    total += degree[item];
  }
  s.avg_links_per_item =
      items.empty() ? 0.0
                    : static_cast<double>(total) / static_cast<double>(items.size());
  return s;
}

void TripleStore::merge(const TripleStore& other) {
  std::vector<std::uint32_t> entity_map(other.entities().size());
  for (std::uint32_t i = 0; i < other.entities().size(); ++i) {
    entity_map[i] = entities_.intern(other.entities().name(i));
  }
  std::vector<std::uint32_t> relation_map(other.relations().size());
  for (std::uint32_t i = 0; i < other.relations().size(); ++i) {
    relation_map[i] = relations_.intern(other.relations().name(i));
  }
  for (const Triple& t : other.triples()) {
    triples_.push_back(Triple{entity_map[t.head], relation_map[t.relation],
                              entity_map[t.tail]});
  }

#if defined(CKAT_VALIDATE)
  // Subgraph-merge boundary: the remap above must land every id inside
  // the merged vocabularies (entity alignment by name).
  const auto issues = CkgValidator::validate(*this);
  CKAT_CHECK_INVARIANT(issues.empty(),
                       "TripleStore::merge: " + format_issues(issues));
#endif
}

}  // namespace ckat::graph
