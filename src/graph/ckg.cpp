#include "graph/ckg.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/contract.hpp"
#if defined(CKAT_VALIDATE)
#include "graph/validator.hpp"
#endif

namespace ckat::graph {

CollaborativeKg::CollaborativeKg(
    const InteractionSet& train_interactions,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& user_user_pairs,
    const std::vector<KnowledgeSource>& sources, const CkgOptions& options) {
  n_users_ = train_interactions.n_users();
  n_items_ = train_interactions.n_items();

  relations_.intern("interact");  // relation 0 by construction

  const auto base = static_cast<std::uint32_t>(n_users_ + n_items_);
  auto attribute_entity = [&](const std::string& name) {
    return base + attributes_.intern(name);
  };

  // G1: user-item interactions (train only -- test items must remain
  // unseen by every model, Sec. VI.A).
  for (const Interaction& x : train_interactions.pairs()) {
    triples_.push_back(
        Triple{user_entity(x.user), interact_relation(), item_entity(x.item)});
  }

  // G3: user-user co-location links, represented with the same
  // "interact" relation as in the paper.
  if (options.include_user_user) {
    for (const auto& [a, b] : user_user_pairs) {
      if (a >= n_users_ || b >= n_users_) {
        throw std::out_of_range("CollaborativeKg: user pair out of range");
      }
      Triple t{user_entity(a), interact_relation(), user_entity(b)};
      triples_.push_back(t);
      knowledge_triples_.push_back(t);
    }
  }

  // G2: item-attribute knowledge, selected sources only.
  const std::unordered_set<std::string> wanted(options.sources.begin(),
                                               options.sources.end());
  for (const KnowledgeSource& src : sources) {
    if (!wanted.count(src.name)) continue;
    for (const auto& it : src.item_triples) {
      if (it.item >= n_items_) {
        throw std::out_of_range("CollaborativeKg: item id out of range in " +
                                src.name);
      }
      Triple t{item_entity(it.item), relations_.intern(it.relation),
               attribute_entity(it.attribute)};
      triples_.push_back(t);
      knowledge_triples_.push_back(t);
    }
    for (const auto& at : src.attribute_triples) {
      Triple t{attribute_entity(at.head), relations_.intern(at.relation),
               attribute_entity(at.tail)};
      triples_.push_back(t);
      knowledge_triples_.push_back(t);
    }
  }

  n_entities_ = n_users_ + n_items_ + attributes_.size();

  // Deduplicate (different sources may assert the same fact).
  auto dedup = [](std::vector<Triple>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(triples_);
  dedup(knowledge_triples_);

#if defined(CKAT_VALIDATE)
  // Subgraph-merge boundary: UIG + UUG + selected IAG sources were just
  // fused under the dense entity-id layout; check segment alignment and
  // vocab ranges before any model consumes the graph.
  const auto issues = CkgValidator::validate(*this);
  CKAT_CHECK_INVARIANT(issues.empty(),
                       "CollaborativeKg: " + format_issues(issues));
#endif
}

KgStats CollaborativeKg::stats() const {
  KgStats s;
  s.n_entities = n_entities_;
  s.n_relations = relations_.size();
  s.n_triples = knowledge_triples_.size();

  std::vector<std::size_t> degree(n_entities_, 0);
  for (const Triple& t : knowledge_triples_) {
    degree[t.head]++;
    degree[t.tail]++;
  }
  std::size_t total = 0;
  for (std::uint32_t v = 0; v < n_items_; ++v) {
    total += degree[item_entity(v)];
  }
  s.avg_links_per_item =
      n_items_ == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(n_items_);
  return s;
}

std::string CollaborativeKg::entity_name(std::uint32_t entity) const {
  if (entity < n_users_) return "user#" + std::to_string(entity);
  if (entity < n_users_ + n_items_) {
    return "item#" + std::to_string(entity - n_users_);
  }
  if (entity < n_entities_) {
    return attributes_.name(entity -
                            static_cast<std::uint32_t>(n_users_ + n_items_));
  }
  throw std::out_of_range("CollaborativeKg::entity_name: id out of range");
}

}  // namespace ckat::graph
