// Knowledge-graph triple storage: G2 = {(h, r, t)} with entity and
// relation vocabularies (Sec. IV, "Item-attribute graph").
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/vocab.hpp"

namespace ckat::graph {

struct Triple {
  std::uint32_t head = 0;
  std::uint32_t relation = 0;
  std::uint32_t tail = 0;

  friend bool operator==(const Triple&, const Triple&) = default;
  friend auto operator<=>(const Triple&, const Triple&) = default;
};

/// Statistics row of Table I.
struct KgStats {
  std::size_t n_entities = 0;
  std::size_t n_relations = 0;
  std::size_t n_triples = 0;
  double avg_links_per_item = 0.0;
};

class TripleStore {
 public:
  /// Adds a triple by name, interning entities and the relation.
  void add(const std::string& head, const std::string& relation,
           const std::string& tail);

  /// Adds a triple by pre-interned ids (ids must already exist).
  void add(std::uint32_t head, std::uint32_t relation, std::uint32_t tail);

  /// Removes exact duplicate triples (stable order of first occurrence).
  void deduplicate();

  [[nodiscard]] const std::vector<Triple>& triples() const noexcept {
    return triples_;
  }
  [[nodiscard]] Vocab& entities() noexcept { return entities_; }
  [[nodiscard]] const Vocab& entities() const noexcept { return entities_; }
  [[nodiscard]] Vocab& relations() noexcept { return relations_; }
  [[nodiscard]] const Vocab& relations() const noexcept { return relations_; }

  [[nodiscard]] std::size_t size() const noexcept { return triples_.size(); }

  /// Computes Table I statistics. `items` restricts the link-average
  /// denominator to item entities (pass the item id range used by the
  /// caller); if empty, averages over all entities.
  [[nodiscard]] KgStats stats(std::span<const std::uint32_t> items = {}) const;

  /// Appends all triples of another store, remapping its vocabularies
  /// into this store's (entity alignment by name).
  void merge(const TripleStore& other);

 private:
  Vocab entities_;
  Vocab relations_;
  std::vector<Triple> triples_;
};

}  // namespace ckat::graph
