// Bidirectional string <-> dense-id vocabulary, used for entities and
// relations in the knowledge graph.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace ckat::graph {

class Vocab {
 public:
  /// Returns the id for `name`, inserting it if new.
  std::uint32_t intern(const std::string& name);

  /// Returns the id for `name` or throws std::out_of_range.
  [[nodiscard]] std::uint32_t id(const std::string& name) const;

  /// Returns the id for `name` or UINT32_MAX if absent.
  [[nodiscard]] std::uint32_t find(const std::string& name) const noexcept;

  [[nodiscard]] const std::string& name(std::uint32_t id) const;

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

 private:
  std::unordered_map<std::string, std::uint32_t> index_;
  std::vector<std::string> names_;
};

}  // namespace ckat::graph
