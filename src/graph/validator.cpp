#include "graph/validator.hpp"

#include <algorithm>
#include <unordered_map>

namespace ckat::graph {

namespace {

/// Caps per-class noise: a corrupt array yields thousands of identical
/// issues; the first few locate the bug, the count says how widespread.
constexpr std::size_t kMaxIssuesPerCheck = 8;

class IssueList {
 public:
  void add(std::string check, std::string detail) {
    std::size_t& seen = per_check_[check];
    ++seen;
    if (seen <= kMaxIssuesPerCheck) {
      issues_.push_back({std::move(check), std::move(detail)});
    }
  }
  [[nodiscard]] std::vector<ValidationIssue> take() { return std::move(issues_); }

 private:
  std::vector<ValidationIssue> issues_;
  std::unordered_map<std::string, std::size_t> per_check_;
};

}  // namespace

std::string format_issues(std::span<const ValidationIssue> issues,
                          std::size_t max_items) {
  if (issues.empty()) return "no issues";
  std::string out = std::to_string(issues.size()) + " issue(s): ";
  const std::size_t shown = std::min(issues.size(), max_items);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) out += "; ";
    out += issues[i].check + " (" + issues[i].detail + ")";
  }
  if (shown < issues.size()) out += "; ...";
  return out;
}

std::vector<ValidationIssue> validate_csr(
    std::span<const std::int64_t> offsets,
    std::span<const std::uint32_t> heads,
    std::span<const std::uint32_t> relations,
    std::span<const std::uint32_t> tails, std::size_t n_entities,
    std::size_t n_relations) {
  IssueList issues;
  const std::size_t n_edges = heads.size();

  if (relations.size() != n_edges || tails.size() != n_edges) {
    issues.add("csr.edge_arrays",
               "heads/relations/tails sizes " + std::to_string(n_edges) + "/" +
                   std::to_string(relations.size()) + "/" +
                   std::to_string(tails.size()));
  }
  if (offsets.size() != n_entities + 1) {
    issues.add("csr.offsets_size",
               "got " + std::to_string(offsets.size()) + ", want " +
                   std::to_string(n_entities + 1));
    return issues.take();  // offset-indexed checks below would be UB
  }
  if (offsets.front() != 0) {
    issues.add("csr.offsets_anchor",
               "offsets[0] = " + std::to_string(offsets.front()));
  }
  if (offsets.back() != static_cast<std::int64_t>(n_edges)) {
    issues.add("csr.offsets_bounds",
               "offsets.back() = " + std::to_string(offsets.back()) +
                   ", nnz = " + std::to_string(n_edges));
  }
  std::int64_t degree_sum = 0;
  for (std::size_t h = 0; h < n_entities; ++h) {
    const std::int64_t begin = offsets[h];
    const std::int64_t end = offsets[h + 1];
    if (end < begin) {
      issues.add("csr.offsets_monotone",
                 "offsets[" + std::to_string(h + 1) + "] = " +
                     std::to_string(end) + " < offsets[" + std::to_string(h) +
                     "] = " + std::to_string(begin));
      continue;
    }
    degree_sum += end - begin;
    if (begin < 0 || end > static_cast<std::int64_t>(n_edges)) {
      issues.add("csr.offsets_bounds",
                 "head " + std::to_string(h) + " range [" +
                     std::to_string(begin) + ", " + std::to_string(end) + ")");
      continue;
    }
    for (std::int64_t e = begin; e < end; ++e) {
      if (heads[static_cast<std::size_t>(e)] != h) {
        issues.add("csr.head_bucket",
                   "edge " + std::to_string(e) + " has head " +
                       std::to_string(heads[static_cast<std::size_t>(e)]) +
                       ", bucketed under " + std::to_string(h));
      }
    }
  }
  if (degree_sum != static_cast<std::int64_t>(n_edges)) {
    issues.add("csr.degree_sum",
               "sum of degrees " + std::to_string(degree_sum) + " != nnz " +
                   std::to_string(n_edges));
  }
  for (std::size_t e = 0; e < n_edges; ++e) {
    if (heads[e] >= n_entities ||
        (e < tails.size() && tails[e] >= n_entities)) {
      issues.add("csr.entity_range",
                 "edge " + std::to_string(e) + ": head " +
                     std::to_string(heads[e]) + " tail " +
                     std::to_string(e < tails.size() ? tails[e] : 0) +
                     ", n_entities " + std::to_string(n_entities));
    }
    if (e < relations.size() && relations[e] >= n_relations) {
      issues.add("csr.relation_range",
                 "edge " + std::to_string(e) + ": relation " +
                     std::to_string(relations[e]) + ", n_relations " +
                     std::to_string(n_relations));
    }
  }
  return issues.take();
}

std::vector<ValidationIssue> validate_ckg_triples(
    std::span<const Triple> triples, std::size_t n_users, std::size_t n_items,
    std::size_t n_entities, std::size_t n_relations) {
  IssueList issues;
  if (n_users + n_items > n_entities) {
    issues.add("ckg.segment_sizes",
               "users " + std::to_string(n_users) + " + items " +
                   std::to_string(n_items) + " > entities " +
                   std::to_string(n_entities));
    return issues.take();
  }
  const std::uint32_t items_begin = static_cast<std::uint32_t>(n_users);
  const std::uint32_t attrs_begin =
      static_cast<std::uint32_t>(n_users + n_items);
  const auto is_user = [&](std::uint32_t e) { return e < items_begin; };
  const auto is_item = [&](std::uint32_t e) {
    return e >= items_begin && e < attrs_begin;
  };
  const auto is_attr = [&](std::uint32_t e) { return e >= attrs_begin; };

  for (std::size_t i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    const std::string at = "triple " + std::to_string(i) + " (" +
                           std::to_string(t.head) + ", " +
                           std::to_string(t.relation) + ", " +
                           std::to_string(t.tail) + ")";
    if (t.head >= n_entities || t.tail >= n_entities) {
      issues.add("ckg.entity_range",
                 at + ", n_entities " + std::to_string(n_entities));
      continue;
    }
    if (t.relation >= n_relations) {
      issues.add("ckg.relation_range",
                 at + ", n_relations " + std::to_string(n_relations));
      continue;
    }
    if (t.relation == CollaborativeKg::interact_relation()) {
      // UIG user->item or UUG user->user.
      if (!is_user(t.head) || is_attr(t.tail)) {
        issues.add("ckg.interact_alignment", at);
      }
    } else {
      // IAG item->attribute or attribute->attribute.
      if (is_user(t.head) || is_user(t.tail) || !is_attr(t.tail)) {
        issues.add("ckg.knowledge_alignment", at);
      }
    }
  }
  return issues.take();
}

std::vector<ValidationIssue> validate_store_triples(
    std::span<const Triple> triples, std::size_t n_entities,
    std::size_t n_relations) {
  IssueList issues;
  for (std::size_t i = 0; i < triples.size(); ++i) {
    const Triple& t = triples[i];
    if (t.head >= n_entities || t.tail >= n_entities) {
      issues.add("store.entity_range",
                 "triple " + std::to_string(i) + ": head " +
                     std::to_string(t.head) + " tail " +
                     std::to_string(t.tail) + ", n_entities " +
                     std::to_string(n_entities));
    }
    if (t.relation >= n_relations) {
      issues.add("store.relation_range",
                 "triple " + std::to_string(i) + ": relation " +
                     std::to_string(t.relation) + ", n_relations " +
                     std::to_string(n_relations));
    }
  }
  return issues.take();
}

std::vector<ValidationIssue> CkgValidator::validate(
    const Adjacency& adjacency) {
  return validate_csr(adjacency.offsets(), adjacency.heads(),
                      adjacency.relations(), adjacency.tails(),
                      adjacency.n_entities(), adjacency.n_relations());
}

std::vector<ValidationIssue> CkgValidator::validate(
    const CollaborativeKg& ckg) {
  std::vector<ValidationIssue> issues = validate_ckg_triples(
      ckg.triples(), ckg.n_users(), ckg.n_items(), ckg.n_entities(),
      ckg.n_relations());
  // Both vectors are sorted + deduplicated by construction, so subset
  // checking is one linear merge pass.
  if (!std::includes(ckg.triples().begin(), ckg.triples().end(),
                     ckg.knowledge_triples().begin(),
                     ckg.knowledge_triples().end())) {
    issues.push_back({"ckg.knowledge_subset",
                      "knowledge_triples() is not a subset of triples()"});
  }
  return issues;
}

std::vector<ValidationIssue> CkgValidator::validate(const TripleStore& store) {
  return validate_store_triples(store.triples(), store.entities().size(),
                                store.relations().size());
}

}  // namespace ckat::graph
