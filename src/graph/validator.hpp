// Structural validation of the CKG and its CSR adjacency.
//
// KGAT-style pipelines fail silently when graph construction drifts: a
// mis-sorted CSR, an entity id outside its segment or a relation outside
// the vocab produces plausible-looking (wrong) embeddings rather than a
// crash. CkgValidator machine-checks the layout contracts documented in
// ckg.hpp and adjacency.hpp:
//
//   CSR        offsets monotone, 0-anchored, in-bounds; degree-sum equals
//              nnz; edge arrays equal length; edges bucketed under the
//              head their CSR slot claims.
//   Alignment  the dense entity-id layout [users | items | attributes] is
//              respected by every triple: "interact" edges (relation 0)
//              connect user->item or user->user (UIG/UUG), knowledge
//              edges connect item->attribute or attribute->attribute
//              (IAG) under a non-interact relation.
//   Vocab      every relation id is within the relation vocabulary.
//
// The free functions operate on raw spans so tests can hand in
// deliberately corrupted arrays; the class wrappers validate live
// objects. Construction-time hooks in Adjacency / CollaborativeKg /
// TripleStore::merge run these under -DCKAT_VALIDATE=ON only (see
// util/contract.hpp); calling the validator directly works in any build.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/adjacency.hpp"
#include "graph/ckg.hpp"
#include "graph/triple_store.hpp"

namespace ckat::graph {

/// One detected breakage. `check` is a stable machine-readable class
/// (tests match on it); `detail` pinpoints the offending index/value.
struct ValidationIssue {
  std::string check;
  std::string detail;
};

/// Joins issues into one human-readable line for contract messages.
[[nodiscard]] std::string format_issues(
    std::span<const ValidationIssue> issues, std::size_t max_items = 4);

/// Validates a head-grouped CSR edge layout. Checks (issue `check` ids):
///   csr.offsets_size, csr.offsets_anchor, csr.offsets_monotone,
///   csr.offsets_bounds, csr.degree_sum, csr.edge_arrays,
///   csr.head_bucket, csr.entity_range, csr.relation_range
[[nodiscard]] std::vector<ValidationIssue> validate_csr(
    std::span<const std::int64_t> offsets,
    std::span<const std::uint32_t> heads,
    std::span<const std::uint32_t> relations,
    std::span<const std::uint32_t> tails, std::size_t n_entities,
    std::size_t n_relations);

/// Validates CKG triples against the dense entity-id segment layout.
/// Checks: ckg.segment_sizes, ckg.relation_range, ckg.entity_range,
///   ckg.interact_alignment, ckg.knowledge_alignment
[[nodiscard]] std::vector<ValidationIssue> validate_ckg_triples(
    std::span<const Triple> triples, std::size_t n_users,
    std::size_t n_items, std::size_t n_entities, std::size_t n_relations);

/// Validates raw triple-store contents against its vocab sizes.
/// Checks: store.entity_range, store.relation_range
[[nodiscard]] std::vector<ValidationIssue> validate_store_triples(
    std::span<const Triple> triples, std::size_t n_entities,
    std::size_t n_relations);

class CkgValidator {
 public:
  [[nodiscard]] static std::vector<ValidationIssue> validate(
      const Adjacency& adjacency);
  /// Runs the triple/alignment checks plus knowledge_triples() being a
  /// subset of triples() (check id: ckg.knowledge_subset).
  [[nodiscard]] static std::vector<ValidationIssue> validate(
      const CollaborativeKg& ckg);
  [[nodiscard]] static std::vector<ValidationIssue> validate(
      const TripleStore& store);
};

}  // namespace ckat::graph
