// Atomic model hot-swap: versioned publication of serving models.
//
// ModelHandle is the single point a refresher publishes a new model
// through and every gateway worker reads the current model from. The
// design is RCU-style:
//
//  * publish() builds an immutable ModelVersion (tier pointers, vocab
//    dimensions, and a shared_ptr payload keeping the backing objects
//    alive) and swaps it in under a mutex. Writers are rare (one per
//    refresh cycle) so a mutex on the publish side costs nothing.
//  * acquire() hands a reader a shared_ptr snapshot. In-flight requests
//    keep scoring against the version they acquired even while a newer
//    one is published — a version dies only when the last reader (or
//    cached worker chain) releases it, so a swap never pauses workers
//    and never invalidates a request mid-walk.
//  * Torn-read detection: every ModelVersion carries a version_seal that
//    must equal its version. A snapshot whose seal mismatches (or an
//    injected swap.torn_read fault) is discarded and re-acquired, up to
//    CKAT_SWAP_MAX_RETRIES times; persistent tearing throws rather than
//    serving a Frankenstein model. Retries are counted in
//    ckat_swap_torn_read_retries_total.
//  * Fault injection: swap.publish_fail fires *before* any state
//    changes, so a failed publish leaves the previous version serving
//    bit-identically (the refresher's rollback guarantee builds on
//    this).
//
// The monotone version counter is also mirrored in a relaxed atomic so
// version() can answer without taking the mutex (operators poll it).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "eval/recommender.hpp"
#include "obs/metrics.hpp"
#include "util/lockorder.hpp"

namespace ckat::serve {

/// One immutable published model generation. Readers treat every field
/// as const after publication.
struct ModelVersion {
  /// Monotone generation number, 1-based (0 = never published).
  std::uint64_t version = 0;
  /// Fallback chain for this generation, most capable first. The
  /// pointees are kept alive by `payload` (or by the caller, for the
  /// legacy static-tiers path).
  std::vector<const eval::Recommender*> tiers;
  /// Vocabulary dimensions of this generation; a gateway worker sizes
  /// score rows with these, never with a newer version's.
  std::size_t n_users = 0;
  std::size_t n_items = 0;
  /// Owns whatever backs `tiers` (e.g. an OnlineRefresher bundle);
  /// may be null when the tiers outlive the handle by contract.
  std::shared_ptr<const void> payload;
  /// Torn-read guard: always written equal to `version`. A reader that
  /// observes a mismatch saw a torn snapshot and must re-acquire.
  std::uint64_t version_seal = 0;

  [[nodiscard]] bool sealed() const noexcept {
    return version != 0 && version == version_seal;
  }
};

class ModelHandle {
 public:
  /// `max_acquire_retries` < 0 resolves from CKAT_SWAP_MAX_RETRIES
  /// (default 8).
  explicit ModelHandle(int max_acquire_retries = -1);

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// Publishes the next generation and returns its version number.
  /// Thread-safe. Throws std::invalid_argument on an empty/null tier
  /// list and std::runtime_error when the swap.publish_fail fault
  /// fires — in both cases the previous version keeps serving,
  /// untouched.
  std::uint64_t publish(std::vector<const eval::Recommender*> tiers,
                        std::size_t n_users, std::size_t n_items,
                        std::shared_ptr<const void> payload = nullptr);

  /// Returns a consistent snapshot of the current version. Thread-safe;
  /// in-flight holders of older snapshots are unaffected by concurrent
  /// publishes. Throws std::logic_error before the first publish and
  /// std::runtime_error when torn reads persist past the retry bound.
  [[nodiscard]] std::shared_ptr<const ModelVersion> acquire() const;

  /// Latest published version number (0 before the first publish).
  /// Lock-free; may trail acquire() by one publication instant.
  [[nodiscard]] std::uint64_t version() const noexcept;

  [[nodiscard]] bool has_version() const noexcept { return version() != 0; }

  /// Cumulative torn-read retries (injected or real); the soak gates on
  /// every retry converging within bounds.
  [[nodiscard]] std::uint64_t torn_read_retries() const noexcept;

 private:
  mutable util::OrderedMutex mutex_{"swap.handle"};
  std::shared_ptr<const ModelVersion> current_;  // guarded by mutex_
  // Mirror of current_->version for lock-free polling. Monotone and
  // only advanced under mutex_; readers need no ordering with the
  // snapshot itself (acquire() gets that from the mutex).
  std::atomic<std::uint64_t> epoch_{0};
  mutable std::atomic<std::uint64_t> torn_read_retries_{0};
  int max_acquire_retries_ = 8;

  obs::Counter* publishes_total_ = nullptr;
  mutable obs::Counter* torn_retries_total_ = nullptr;
  obs::Gauge* version_gauge_ = nullptr;
};

}  // namespace ckat::serve
