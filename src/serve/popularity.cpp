#include "serve/popularity.hpp"

#include <algorithm>
#include <stdexcept>

namespace ckat::serve {

PopularityRecommender::PopularityRecommender(
    const graph::InteractionSet& train)
    : n_users_(train.n_users()), counts_(train.n_items(), 0.0f) {
  for (const graph::Interaction& pair : train.pairs()) {
    counts_[pair.item] += 1.0f;
  }
}

void PopularityRecommender::score_items(std::uint32_t user,
                                        std::span<float> out) const {
  if (user >= n_users_) {
    throw std::invalid_argument("PopularityRecommender: user out of range");
  }
  if (out.size() != counts_.size()) {
    throw std::invalid_argument(
        "PopularityRecommender: output span size mismatch");
  }
  std::copy(counts_.begin(), counts_.end(), out.begin());
}

void PopularityRecommender::score_batch(std::span<const std::uint32_t> users,
                                        std::span<float> out) const {
  if (out.size() != users.size() * counts_.size()) {
    throw std::invalid_argument(
        "PopularityRecommender: output span size mismatch");
  }
  for (std::size_t i = 0; i < users.size(); ++i) {
    if (users[i] >= n_users_) {
      throw std::invalid_argument("PopularityRecommender: user out of range");
    }
    std::copy(counts_.begin(), counts_.end(),
              out.begin() + static_cast<std::ptrdiff_t>(i * counts_.size()));
  }
}

}  // namespace ckat::serve
