#include "serve/refresh.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <utility>

#include "eval/evaluator.hpp"
#include "nn/serialize.hpp"
#include "obs/flight.hpp"
#include "obs/metric_names.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::serve {

namespace {

int resolve_epochs(int configured) {
  if (configured >= 0) return configured;
  return static_cast<int>(
      util::env_int("CKAT_REFRESH_EPOCHS", 2, 0, 100000));
}

double resolve_eps(double configured) {
  if (configured >= 0.0) return configured;
  return util::env_double("CKAT_REFRESH_GUARDRAIL_EPS", 0.02, 0.0, 1.0);
}

/// Projects a grown model onto the bootstrap vocabulary: the entity id
/// layout is append-only, so the first n_users/n_items of any later
/// generation ARE the bootstrap population, and truncating each score
/// row to the bootstrap item count ranks both models over an identical
/// candidate set.
class PrefixView final : public eval::Recommender {
 public:
  PrefixView(const eval::Recommender& inner, std::size_t n_users,
             std::size_t n_items)
      : inner_(inner), n_users_(n_users), n_items_(n_items) {
    if (inner.n_users() < n_users || inner.n_items() < n_items) {
      throw std::invalid_argument(
          "PrefixView: inner model smaller than the projection");
    }
  }

  [[nodiscard]] std::string name() const override {
    return inner_.name() + "@prefix";
  }
  void fit() override {}
  void score_items(std::uint32_t user, std::span<float> out) const override {
    full_row_.resize(inner_.n_items());
    inner_.score_items(user, full_row_);
    std::copy_n(full_row_.begin(), n_items_, out.begin());
  }
  [[nodiscard]] std::size_t n_users() const override { return n_users_; }
  [[nodiscard]] std::size_t n_items() const override { return n_items_; }

 private:
  const eval::Recommender& inner_;
  std::size_t n_users_;
  std::size_t n_items_;
  mutable std::vector<float> full_row_;  // single-threaded eval scratch
};

}  // namespace

const char* to_string(RefreshOutcome::Status status) noexcept {
  switch (status) {
    case RefreshOutcome::Status::kPublished: return "published";
    case RefreshOutcome::Status::kRejectedBadDelta:
      return "rejected_bad_delta";
    case RefreshOutcome::Status::kRejectedGuardrail:
      return "rejected_guardrail";
    case RefreshOutcome::Status::kPublishFailed: return "publish_failed";
  }
  return "unknown";
}

OnlineRefresher::OnlineRefresher(
    std::shared_ptr<ModelHandle> handle,
    graph::InteractionSplit bootstrap_split,
    std::vector<std::pair<std::uint32_t, std::uint32_t>> user_user_pairs,
    std::vector<graph::KnowledgeSource> sources, RefreshConfig config)
    : handle_(std::move(handle)),
      holdout_(std::move(bootstrap_split)),
      bootstrap_uug_(std::move(user_user_pairs)),
      bootstrap_sources_(std::move(sources)),
      config_(std::move(config)),
      resolved_epochs_(resolve_epochs(config_.epochs)),
      resolved_eps_(resolve_eps(config_.guardrail_eps)) {
  if (handle_ == nullptr) {
    throw std::invalid_argument("OnlineRefresher: null ModelHandle");
  }
  if (config_.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "OnlineRefresher: checkpoint_path is required (the refresher "
        "warm-starts every cycle from it)");
  }

  auto& registry = obs::MetricsRegistry::global();
  auto delta_counter = [&registry](const char* outcome) {
    return &registry.counter(obs::metric_names::kRefreshIngestDeltasTotal,
                             {{"outcome", outcome}});
  };
  deltas_published_ = delta_counter("published");
  deltas_bad_ = delta_counter("rejected_bad_delta");
  deltas_guardrail_ = delta_counter("rejected_guardrail");
  deltas_publish_failed_ = delta_counter("publish_failed");
  publishes_ = &registry.counter(obs::metric_names::kRefreshPublishesTotal);
  rollbacks_guardrail_ =
      &registry.counter(obs::metric_names::kRefreshRollbacksTotal,
                        {{"reason", "guardrail"}});
  rollbacks_publish_fail_ =
      &registry.counter(obs::metric_names::kRefreshRollbacksTotal,
                        {{"reason", "publish_fail"}});
  fit_seconds_ =
      &registry.histogram(obs::metric_names::kRefreshFitSeconds);
}

OnlineRefresher::~OnlineRefresher() = default;

std::size_t OnlineRefresher::serving_users() const {
  return handle_->acquire()->n_users;
}

std::size_t OnlineRefresher::serving_items() const {
  return handle_->acquire()->n_items;
}

double OnlineRefresher::holdout_recall(
    const eval::Recommender& model) const {
  const PrefixView view(model, holdout_.train.n_users(),
                        holdout_.train.n_items());
  eval::EvalConfig eval_config;
  eval_config.k = config_.eval_k;
  eval_config.threads = 1;  // PrefixView's scratch row is not shareable
  return eval::evaluate_topk(view, holdout_, eval_config).recall;
}

RefreshOutcome OnlineRefresher::publish_bundle_locked(std::shared_ptr<Bundle> bundle,
                                               double candidate_recall,
                                               RefreshOutcome outcome) {
  // Capture the checkpoint BEFORE the swap so a publish failure leaves
  // both the serving model and the on-disk checkpoint untouched.
  nn::TrainingCheckpoint checkpoint =
      bundle->model->make_checkpoint(resolved_epochs_);
  try {
    outcome.version = handle_->publish(
        {bundle->model.get(), bundle->popularity.get()},
        bundle->ckg.n_users(), bundle->ckg.n_items(), bundle);
  } catch (const std::exception& error) {
    ++rollbacks_;
    rollbacks_publish_fail_->inc();
    deltas_publish_failed_->inc();
    outcome.status = RefreshOutcome::Status::kPublishFailed;
    outcome.version = handle_->version();
    outcome.error = error.what();
    obs::flight_anomaly("refresh_rollback",
                        {{"reason", "publish_fail"},
                         {"error", outcome.error}});
    CKAT_LOG_WARN(
        "[refresh] publish failed (%s); version %llu keeps serving",
        error.what(),
        static_cast<unsigned long long>(outcome.version));
    return outcome;
  }
  // The swap succeeded; only now may the durable state advance.
  nn::save_checkpoint(checkpoint, config_.checkpoint_path);
  checkpoint_written_ = true;
  serving_bundle_ = std::move(bundle);
  serving_recall_ = candidate_recall;
  outcome.status = RefreshOutcome::Status::kPublished;
  outcome.candidate_recall = candidate_recall;
  publishes_->inc();
  obs::trace_event("refresh.publish",
                   {{"version", std::to_string(outcome.version)},
                    {"recall", std::to_string(candidate_recall)}});
  return outcome;
}

RefreshOutcome OnlineRefresher::bootstrap() {
  std::lock_guard<util::OrderedMutex> cycle(cycle_mutex_);
  if (serving_bundle_ != nullptr) {
    throw std::logic_error("OnlineRefresher::bootstrap called twice");
  }
  graph::CollaborativeKg ckg(holdout_.train, bootstrap_uug_,
                             bootstrap_sources_, config_.ckg_options);
  auto bundle =
      std::make_shared<Bundle>(graph::InteractionSet(holdout_.train),
                               std::move(ckg));
  core::CkatConfig model_config = config_.model;
  model_config.checkpoint_every = 0;  // the refresher owns checkpoints
  bundle->model = std::make_unique<core::CkatModel>(bundle->ckg,
                                                    bundle->train,
                                                    model_config);
  {
    util::Timer fit_timer;
    bundle->model->fit();
    fit_seconds_->observe(fit_timer.seconds());
  }
  bundle->popularity =
      std::make_unique<PopularityRecommender>(bundle->train);

  RefreshOutcome outcome;
  outcome.serving_recall = 0.0;
  const double recall = holdout_recall(*bundle->model);
  outcome = publish_bundle_locked(std::move(bundle), recall, outcome);
  if (outcome.status == RefreshOutcome::Status::kPublished) {
    CKAT_LOG_INFO(
        "[refresh] bootstrap published v%llu (holdout recall %.4f)",
        static_cast<unsigned long long>(outcome.version), recall);
  }
  return outcome;
}

RefreshOutcome OnlineRefresher::ingest(const graph::CkgDelta& delta) {
  std::lock_guard<util::OrderedMutex> cycle(cycle_mutex_);
  if (serving_bundle_ == nullptr || !checkpoint_written_) {
    throw std::logic_error(
        "OnlineRefresher::ingest before a successful bootstrap");
  }
  RefreshOutcome outcome;
  outcome.version = handle_->version();
  outcome.serving_recall = serving_recall_;

  // 1. Grow a private copy of the serving graph. The serving
  //    generation's ckg is immutable once published — apply_delta
  //    invalidates consumer id mappings, so it must never run in place.
  graph::CollaborativeKg grown = serving_bundle_->ckg;
  try {
    outcome.delta_stats = grown.apply_delta(delta);
  } catch (const std::invalid_argument& error) {
    deltas_bad_->inc();
    outcome.status = RefreshOutcome::Status::kRejectedBadDelta;
    outcome.error = error.what();
    CKAT_LOG_WARN("[refresh] delta %llu rejected: %s",
                  static_cast<unsigned long long>(delta.sequence),
                  error.what());
    return outcome;
  }

  // 2. Accumulate interactions at the grown dimensions.
  graph::InteractionSet train(grown.n_users(), grown.n_items());
  for (const graph::Interaction& pair : serving_bundle_->train.pairs()) {
    train.add(pair.user, pair.item);
  }
  for (const graph::Interaction& pair : delta.interactions) {
    train.add(pair.user, pair.item);
  }
  train.finalize();
  auto bundle =
      std::make_shared<Bundle>(std::move(train), std::move(grown));

  // 3. Candidate model: warm-start from the serving checkpoint, then a
  //    bounded refresh fit.
  core::CkatConfig model_config = config_.model;
  model_config.checkpoint_every = 0;
  bundle->model = std::make_unique<core::CkatModel>(bundle->ckg,
                                                    bundle->train,
                                                    model_config);
  const nn::TrainingCheckpoint previous =
      nn::load_checkpoint(config_.checkpoint_path);
  bundle->model->warm_start_from_checkpoint(previous, serving_bundle_->ckg);
  {
    util::Timer fit_timer;
    bundle->model->refresh_fit(resolved_epochs_);
    fit_seconds_->observe(fit_timer.seconds());
  }
  bundle->popularity =
      std::make_unique<PopularityRecommender>(bundle->train);

  // 4. Guardrail on the fixed bootstrap holdout.
  const double candidate_recall = holdout_recall(*bundle->model);
  outcome.candidate_recall = candidate_recall;
  if (candidate_recall + resolved_eps_ < serving_recall_) {
    ++rollbacks_;
    rollbacks_guardrail_->inc();
    deltas_guardrail_->inc();
    obs::flight_anomaly(
        "refresh_rollback",
        {{"reason", "guardrail"},
         {"candidate_recall", std::to_string(candidate_recall)},
         {"serving_recall", std::to_string(serving_recall_)}});
    outcome.status = RefreshOutcome::Status::kRejectedGuardrail;
    outcome.error = "holdout recall " + std::to_string(candidate_recall) +
                    " regressed more than eps=" +
                    std::to_string(resolved_eps_) + " below serving " +
                    std::to_string(serving_recall_);
    CKAT_LOG_WARN("[refresh] delta %llu rolled back: %s",
                  static_cast<unsigned long long>(delta.sequence),
                  outcome.error.c_str());
    return outcome;
  }

  // 5. Atomic hot swap, then durable checkpoint advance.
  outcome = publish_bundle_locked(std::move(bundle), candidate_recall, outcome);
  if (outcome.status == RefreshOutcome::Status::kPublished) {
    deltas_published_->inc();
    CKAT_LOG_INFO(
        "[refresh] delta %llu published v%llu: +%zu users +%zu items "
        "+%zu triples (holdout recall %.4f vs serving %.4f)",
        static_cast<unsigned long long>(delta.sequence),
        static_cast<unsigned long long>(outcome.version),
        outcome.delta_stats.users_added, outcome.delta_stats.items_added,
        outcome.delta_stats.triples_added, candidate_recall,
        outcome.serving_recall);
  }
  return outcome;
}

}  // namespace ckat::serve
