// Online model refresh: streamed CKG deltas in, hot-swapped models out.
//
// OnlineRefresher closes the loop the paper leaves open in Sec. VI.F
// ("fine-tuning must be repeated when the graph changes"): instead of
// retraining from scratch on every graph change, each ingestion cycle
//
//   1. copies the serving CKG and applies the delta
//      (CollaborativeKg::apply_delta — validated, append-only growth),
//   2. builds a candidate CkatModel over the grown graph and
//      warm-starts it from the latest CKATCKP2 checkpoint
//      (warm_start_from_checkpoint: existing rows AND Adam moments
//      transfer bit-exactly; cold-start entities keep fresh Xavier
//      rows),
//   3. runs a bounded refresh_fit (CKAT_REFRESH_EPOCHS),
//   4. evaluates the candidate on a FIXED bootstrap holdout and rolls
//      back if recall regressed more than CKAT_REFRESH_GUARDRAIL_EPS
//      below the serving model's recall on the same holdout — the
//      prior model keeps serving, bit-identically, and the rollback is
//      counted (ckat_refresh_rollbacks_total{reason}),
//   5. publishes through ModelHandle::publish (atomic hot swap; a
//      failed publish — e.g. injected swap.publish_fail — also rolls
//      back) and only then persists the new checkpoint.
//
// The guardrail evaluation compares candidate and serving model on the
// *bootstrap-dimensioned* holdout via a prefix projection: entity ids
// are append-only, so the candidate's first n_users/n_items rows are
// exactly the bootstrap population and recall@K is computed over an
// identical candidate set for both models.
//
// Not thread-safe: one refresher, driven from one refresh thread; the
// gateway reads concurrently through the ModelHandle only.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/ckat.hpp"
#include "graph/ckg.hpp"
#include "graph/delta.hpp"
#include "graph/interactions.hpp"
#include "obs/metrics.hpp"
#include "serve/popularity.hpp"
#include "serve/swap.hpp"
#include "util/lockorder.hpp"

namespace ckat::serve {

struct RefreshConfig {
  /// Training epochs per refresh cycle; < 0 resolves from
  /// CKAT_REFRESH_EPOCHS (default 2). 0 is valid: publish the
  /// warm-started model with only the propagation refreshed.
  int epochs = -1;
  /// Maximum tolerated holdout-recall regression (serving - candidate)
  /// before the cycle rolls back; < 0 resolves from
  /// CKAT_REFRESH_GUARDRAIL_EPS (default 0.02).
  double guardrail_eps = -1.0;
  /// Cutoff for the guardrail recall@K evaluation.
  std::size_t eval_k = 20;
  /// Architecture and bootstrap training budget of every generation.
  core::CkatConfig model;
  /// CKATCKP2 file this refresher owns (rewritten after each publish).
  std::string checkpoint_path;
  /// Source selection for the bootstrap CKG build.
  graph::CkgOptions ckg_options;
};

struct RefreshOutcome {
  enum class Status {
    kPublished,         // candidate is now serving
    kRejectedBadDelta,  // apply_delta refused the delta; nothing changed
    kRejectedGuardrail, // candidate regressed; prior model keeps serving
    kPublishFailed,     // swap failed; prior model keeps serving
  };
  Status status = Status::kPublished;
  /// Version now serving (the new one for kPublished, the prior one
  /// otherwise; 0 when nothing is published yet).
  std::uint64_t version = 0;
  /// Guardrail recalls on the fixed bootstrap holdout (0 when the
  /// cycle never reached evaluation).
  double candidate_recall = 0.0;
  double serving_recall = 0.0;
  graph::DeltaStats delta_stats;
  /// Failure detail for the rejected statuses.
  std::string error;
};

[[nodiscard]] const char* to_string(RefreshOutcome::Status status) noexcept;

class OnlineRefresher {
 public:
  /// `bootstrap_split` carries the initial corpus (train feeds the CKG
  /// and the first fit; the whole split is retained as the fixed
  /// guardrail holdout). `user_user_pairs` / `sources` seed the
  /// bootstrap CKG; later growth arrives exclusively via ingest().
  OnlineRefresher(std::shared_ptr<ModelHandle> handle,
                  graph::InteractionSplit bootstrap_split,
                  std::vector<std::pair<std::uint32_t, std::uint32_t>>
                      user_user_pairs,
                  std::vector<graph::KnowledgeSource> sources,
                  RefreshConfig config);
  ~OnlineRefresher();

  OnlineRefresher(const OnlineRefresher&) = delete;
  OnlineRefresher& operator=(const OnlineRefresher&) = delete;

  /// Trains the first generation on the bootstrap corpus, persists its
  /// checkpoint and publishes it. Call exactly once, before ingest().
  RefreshOutcome bootstrap();

  /// One full refresh cycle for `delta` (see file header). Leaves the
  /// serving model untouched on every failure path.
  RefreshOutcome ingest(const graph::CkgDelta& delta);

  [[nodiscard]] std::uint64_t serving_version() const noexcept {
    return handle_->version();
  }
  /// Guardrail + publish-failure rollbacks so far.
  [[nodiscard]] std::uint64_t rollbacks() const noexcept {
    return rollbacks_.load();
  }
  /// Dimensions of the generation currently serving.
  [[nodiscard]] std::size_t serving_users() const;
  [[nodiscard]] std::size_t serving_items() const;

 private:
  /// Everything one published generation needs to stay alive while any
  /// worker still holds its snapshot: the grown graph, the train set
  /// the model references, the model, and the popularity fallback.
  /// Published as the ModelVersion payload. Field order matters: the
  /// model holds references into ckg/train, so it must destroy first
  /// (members destroy in reverse declaration order).
  struct Bundle {
    graph::InteractionSet train;
    graph::CollaborativeKg ckg;
    std::unique_ptr<core::CkatModel> model;
    std::unique_ptr<PopularityRecommender> popularity;

    Bundle(graph::InteractionSet train_set, graph::CollaborativeKg graph)
        : train(std::move(train_set)), ckg(std::move(graph)) {}
  };

  /// Recall@eval_k of `model` on the fixed bootstrap holdout, via the
  /// prefix projection described in the file header.
  [[nodiscard]] double holdout_recall(const eval::Recommender& model) const;
  /// Publishes `bundle` and persists its checkpoint; on publish
  /// failure counts a rollback and leaves the prior generation
  /// serving.
  RefreshOutcome publish_bundle_locked(std::shared_ptr<Bundle> bundle,
                                       double candidate_recall,
                                       RefreshOutcome outcome);

  std::shared_ptr<ModelHandle> handle_;
  graph::InteractionSplit holdout_;  // fixed bootstrap-dimension split
  std::vector<std::pair<std::uint32_t, std::uint32_t>> bootstrap_uug_;
  std::vector<graph::KnowledgeSource> bootstrap_sources_;
  RefreshConfig config_;
  int resolved_epochs_ = 2;
  double resolved_eps_ = 0.02;

  /// Serializes refresh cycles: bootstrap()/ingest() take it for the
  /// whole cycle, so concurrent callers queue instead of interleaving
  /// half-grown generations.
  util::OrderedMutex cycle_mutex_{"refresh.cycle"};
  std::shared_ptr<Bundle> serving_bundle_;  // guarded by cycle_mutex_
  double serving_recall_ = 0.0;             // guarded by cycle_mutex_
  std::atomic<std::uint64_t> rollbacks_{0};
  bool checkpoint_written_ = false;  // guarded by cycle_mutex_

  obs::Counter* deltas_published_ = nullptr;
  obs::Counter* deltas_bad_ = nullptr;
  obs::Counter* deltas_guardrail_ = nullptr;
  obs::Counter* deltas_publish_failed_ = nullptr;
  obs::Counter* publishes_ = nullptr;
  obs::Counter* rollbacks_guardrail_ = nullptr;
  obs::Counter* rollbacks_publish_fail_ = nullptr;
  obs::Histogram* fit_seconds_ = nullptr;
};

}  // namespace ckat::serve
