// Degraded-mode serving: a Recommender that never fails to answer.
//
// A facility portal keeps serving recommendations even when the primary
// model misbehaves — throws (unfitted, corrupted state), stalls past the
// latency budget, or fails repeatedly. ResilientRecommender wraps an
// ordered fallback chain (e.g. CKAT -> BPRMF -> item popularity) and for
// each request walks down the chain until a tier answers:
//
//  * Deadlines: scoring is single-threaded, so a deadline cannot preempt
//    a running tier; instead the elapsed time is checked after the call
//    and an over-deadline answer is treated as a failure (the result is
//    discarded as stale and the next tier answers). Fault injection can
//    simulate a stall without actually sleeping.
//  * Circuit breaking: `failure_threshold` consecutive failures open a
//    tier's circuit; while open the tier is skipped entirely (no latency
//    paid on a known-bad model). After `retry_after` further requests
//    one probe request is let through (half-open); success closes the
//    circuit.
//  * Health snapshot: per-tier requests served / failures / deadline
//    misses / circuit state, plus chain-level fallback activations, so
//    an operator (or the fault-tolerance bench) can see exactly how
//    degraded the service is.
//
// If every tier fails — which cannot happen with a PopularityRecommender
// terminal tier — the request is answered with uniform zero scores
// rather than an exception, and counted in `zero_filled`.
//
// Not thread-safe: one ResilientRecommender per serving thread (the
// wrapped models are only read).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/recommender.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ckat::serve {

struct ResilientConfig {
  /// Per-request scoring deadline in milliseconds; 0 disables the check.
  double deadline_ms = 0.0;
  /// Consecutive failures that open a tier's circuit.
  int failure_threshold = 3;
  /// Requests skipped while open before a half-open probe is allowed.
  int retry_after = 32;
};

class ResilientRecommender final : public eval::Recommender {
 public:
  /// `tiers` is the fallback chain, most capable first; models must be
  /// fitted by their owners and outlive this object. All tiers must
  /// agree on n_users/n_items.
  ResilientRecommender(std::vector<const eval::Recommender*> tiers,
                       ResilientConfig config = {});

  [[nodiscard]] std::string name() const override;
  /// Tiers are trained by their owners (a failed fit there already
  /// surfaces as scoring failures here); fit() is a no-op.
  void fit() override {}
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override;
  [[nodiscard]] std::size_t n_items() const override;

  struct TierStats {
    std::string name;
    std::uint64_t served = 0;          // requests answered by this tier
    std::uint64_t failures = 0;        // exceptions + deadline misses
    std::uint64_t exceptions = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t skipped_open = 0;    // skipped while circuit open
    bool circuit_open = false;
    /// Human-readable cause of the most recent failure ("" when the
    /// tier has never failed): the exception's what(), "injected fault:
    /// <point>", or "deadline exceeded (X.X ms > budget Y.Y ms)".
    std::string last_error;
    /// Latency over every *attempted* request (served or failed, not
    /// circuit-skips), so snapshot() stands alone without the registry.
    std::uint64_t attempts = 0;
    double latency_min_ms = 0.0;  // 0 until the first attempt
    double latency_mean_ms = 0.0;
    double latency_max_ms = 0.0;
  };

  struct HealthSnapshot {
    std::uint64_t requests = 0;
    /// Requests answered by any tier below the top one.
    std::uint64_t fallback_activations = 0;
    /// Requests no tier could answer (zero scores served).
    std::uint64_t zero_filled = 0;
    std::vector<TierStats> tiers;
  };

  [[nodiscard]] HealthSnapshot snapshot() const;

  /// Closes every circuit and clears consecutive-failure counters
  /// (e.g. after redeploying a repaired model). Cumulative counters are
  /// kept.
  void reset_circuits();

 private:
  struct TierState {
    TierStats stats;
    int consecutive_failures = 0;
    int requests_since_open = 0;
    double latency_sum_ms = 0.0;
    /// Registry handles resolved once in the constructor; score_items
    /// only touches atomics through them.
    obs::Histogram* latency_hist = nullptr;
    obs::Counter* open_transitions = nullptr;
    obs::Counter* close_transitions = nullptr;
  };

  void record_failure(TierState& tier, std::string error) const;
  void record_latency(TierState& tier, double elapsed_ms) const;

  std::vector<const eval::Recommender*> tiers_;
  ResilientConfig config_;
  mutable std::vector<TierState> states_;
  mutable std::uint64_t requests_ = 0;
  mutable std::uint64_t fallback_activations_ = 0;
  mutable std::uint64_t zero_filled_ = 0;
};

/// Renders a health snapshot for a RunReport section ("serving" in the
/// observability bench) or any other JSON consumer.
[[nodiscard]] obs::JsonValue health_to_json(
    const ResilientRecommender::HealthSnapshot& health);

}  // namespace ckat::serve
