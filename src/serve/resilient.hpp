// Degraded-mode serving: a Recommender that never fails to answer.
//
// A facility portal keeps serving recommendations even when the primary
// model misbehaves — throws (unfitted, corrupted state), stalls past the
// latency budget, or fails repeatedly. ResilientRecommender wraps an
// ordered fallback chain (e.g. CKAT -> BPRMF -> item popularity) and for
// each request walks down the chain until a tier answers:
//
//  * Deadlines: scoring is synchronous, so a deadline cannot preempt a
//    running tier; instead the elapsed time is checked after the call
//    and an over-deadline answer is treated as a failure (the result is
//    discarded as stale and the next tier answers). The budget
//    *propagates*: each tier is judged against the time remaining when
//    it started, not the full budget, so a slow upper tier cannot spend
//    the whole deadline and still hand lower tiers a fresh allowance.
//    When the budget runs out mid-walk the remaining tiers are not
//    attempted (score_with_budget reports kBudgetExhausted and the
//    caller — e.g. the gateway — sheds the request). Fault injection
//    can simulate a stall without sleeping (serve.score_timeout) or
//    inject real latency (serve.score_delay).
//  * Output validation: a tier that answers with non-finite scores
//    (NaN/inf from corrupted state, or an injected serve.score_bitflip)
//    is treated as failed — corrupted answers never reach a client.
//  * Circuit breaking: `failure_threshold` consecutive failures open a
//    tier's circuit; while open the tier is skipped entirely (no latency
//    paid on a known-bad model). After `retry_after` further requests
//    one probe request is let through (half-open); success closes the
//    circuit.
//  * Health snapshot: per-tier requests served / failures / deadline
//    misses / circuit state, plus chain-level fallback activations, so
//    an operator (or the fault-tolerance bench) can see exactly how
//    degraded the service is.
//
// If every tier fails — which cannot happen with a PopularityRecommender
// terminal tier — the request is answered with uniform zero scores
// rather than an exception, and counted in `zero_filled`.
//
// Not thread-safe: one ResilientRecommender per serving thread (the
// wrapped models are only read). The gateway (gateway.hpp) runs one
// chain per worker and merges their snapshots with aggregate_health().
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "eval/recommender.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace ckat::serve {

struct ResilientConfig {
  /// Per-request scoring deadline in milliseconds; 0 disables the check.
  double deadline_ms = 0.0;
  /// Consecutive failures that open a tier's circuit.
  int failure_threshold = 3;
  /// Requests skipped while open before a half-open probe is allowed.
  int retry_after = 32;
};

class ResilientRecommender final : public eval::Recommender {
 public:
  /// `tiers` is the fallback chain, most capable first; models must be
  /// fitted by their owners and outlive this object. All tiers must
  /// agree on n_users/n_items.
  ResilientRecommender(std::vector<const eval::Recommender*> tiers,
                       ResilientConfig config = {});

  [[nodiscard]] std::string name() const override;
  /// Tiers are trained by their owners (a failed fit there already
  /// surfaces as scoring failures here); fit() is a no-op.
  void fit() override {}
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override;
  [[nodiscard]] std::size_t n_items() const override;

  /// How one walk of the fallback chain ended.
  struct ScoreOutcome {
    enum class Kind {
      kServed,           // a tier answered within its remaining budget
      kZeroFilled,       // every tier was attempted and failed
      kBudgetExhausted,  // budget ran out before a tier could answer;
                         // out is zero-filled, remaining tiers skipped
    };
    Kind kind = Kind::kZeroFilled;
    /// Index of the serving tier (0 = top) when kind == kServed.
    int tier = -1;
    /// Wall-clock spent inside the walk.
    double elapsed_ms = 0.0;
  };

  /// Per-request deadline variant of score_items(): walks the chain
  /// with `budget_ms` total (0 disables the deadline check), giving
  /// each tier only the budget still remaining when it starts.
  /// score_items() forwards here with the configured deadline_ms.
  ScoreOutcome score_with_budget(std::uint32_t user, std::span<float> out,
                                 double budget_ms) const;

  /// Batched walk for the gateway's batch path: one walk of the chain
  /// scores ALL of `users` (out holds users.size() * n_items floats,
  /// row-major) via each tier's score_batch, under one shared budget.
  /// The whole block succeeds or fails together — one corrupted row
  /// fails the tier for the block and the next tier rescores everyone,
  /// keeping the all-rows-finite guarantee of the per-user path.
  ///
  /// Accounting: requests / served / zero_filled / budget_exhausted /
  /// fallback_activations advance by users.size() (user granularity,
  /// so conservation identities match the per-user path), while
  /// per-tier attempts / exceptions / corrupted / deadline_misses /
  /// skipped_open advance by 1 per tier *invocation* (a block is one
  /// attempt — one latency observation, one circuit-breaker step).
  ///
  /// The inherited score_batch() deliberately keeps the default
  /// per-user fallback loop: evaluate_topk over a resilient chain
  /// (fault-tolerance and observability benches) depends on per-user
  /// walk accounting such as fallback activations per user.
  ScoreOutcome score_batch_with_budget(std::span<const std::uint32_t> users,
                                       std::span<float> out,
                                       double budget_ms) const;

  struct TierStats {
    std::string name;
    std::uint64_t served = 0;          // requests answered by this tier
    std::uint64_t failures = 0;        // exceptions + misses + corruptions
    std::uint64_t exceptions = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t corrupted = 0;       // non-finite scores in the answer
    std::uint64_t skipped_open = 0;    // skipped while circuit open
    bool circuit_open = false;
    /// Human-readable cause of the most recent failure ("" when the
    /// tier has never failed): the exception's what(), "injected fault:
    /// <point>", or "deadline exceeded (X.X ms > budget Y.Y ms)".
    std::string last_error;
    /// Latency over every *attempted* request (served or failed, not
    /// circuit-skips), so snapshot() stands alone without the registry.
    std::uint64_t attempts = 0;
    double latency_min_ms = 0.0;  // 0 until the first attempt
    double latency_mean_ms = 0.0;
    double latency_max_ms = 0.0;
  };

  struct HealthSnapshot {
    /// Model generation the counters belong to (0 = unversioned, the
    /// standalone-chain default). aggregate_health() refuses to mix
    /// generations, so a snapshot is always internally coherent even
    /// when taken mid-swap.
    std::uint64_t model_version = 0;
    std::uint64_t requests = 0;
    /// Requests answered by any tier below the top one.
    std::uint64_t fallback_activations = 0;
    /// Requests no tier could answer (zero scores served).
    std::uint64_t zero_filled = 0;
    /// Walks stopped early because the per-request budget ran out.
    std::uint64_t budget_exhausted = 0;
    std::vector<TierStats> tiers;
  };

  [[nodiscard]] HealthSnapshot snapshot() const;

  /// Tags every future snapshot() with the model generation this chain
  /// serves (the gateway sets it when it builds a chain for a version).
  void set_model_version(std::uint64_t version) noexcept {
    model_version_ = version;
  }

  /// Closes every circuit and clears consecutive-failure counters
  /// (e.g. after redeploying a repaired model). Cumulative counters are
  /// kept.
  void reset_circuits();

 private:
  struct TierState {
    TierStats stats;
    int consecutive_failures = 0;
    int requests_since_open = 0;
    double latency_sum_ms = 0.0;
    /// Registry handles resolved once in the constructor; score_items
    /// only touches atomics through them.
    obs::Histogram* latency_hist = nullptr;
    obs::Counter* open_transitions = nullptr;
    obs::Counter* close_transitions = nullptr;
  };

  /// Scores one tier's answer into `out` (score_items for the single
  /// path, score_batch for the batched path).
  using TierInvoke =
      std::function<void(const eval::Recommender& tier, std::span<float> out)>;

  /// Shared fallback walk behind score_with_budget and
  /// score_batch_with_budget. `weight` is the number of logical user
  /// requests the walk answers; `bitflip_index` is where an injected
  /// serve.score_bitflip lands.
  ScoreOutcome walk_chain(std::span<float> out, double budget_ms,
                          std::uint64_t weight, std::size_t bitflip_index,
                          const TierInvoke& invoke) const;

  void record_failure(TierState& tier, std::string error) const;
  void record_latency(TierState& tier, double elapsed_ms) const;

  std::vector<const eval::Recommender*> tiers_;
  ResilientConfig config_;
  std::uint64_t model_version_ = 0;
  mutable std::vector<TierState> states_;
  mutable std::uint64_t requests_ = 0;
  mutable std::uint64_t fallback_activations_ = 0;
  mutable std::uint64_t zero_filled_ = 0;
  mutable std::uint64_t budget_exhausted_ = 0;
};

/// Renders a health snapshot for a RunReport section ("serving" in the
/// observability bench) or any other JSON consumer.
[[nodiscard]] obs::JsonValue health_to_json(
    const ResilientRecommender::HealthSnapshot& health);

/// Merges per-worker snapshots of identical chains (same tiers in the
/// same order) into one fleet view: counters are summed, a tier's
/// circuit reads open when it is open on *any* worker, latency extrema
/// are fleet-wide and the mean is attempt-weighted. Used by the gateway
/// so operators see one incident, not M partial ones.
///
/// Version coherence: when parts span model generations (a swap is in
/// flight and some workers still hold the old chain), only the parts of
/// the *newest* generation present are merged — a fleet view never sums
/// counters across versions, because tier order, vocabulary width and
/// circuit history all changed at the swap. The result carries that
/// generation in model_version.
[[nodiscard]] ResilientRecommender::HealthSnapshot aggregate_health(
    const std::vector<ResilientRecommender::HealthSnapshot>& parts);

}  // namespace ckat::serve
