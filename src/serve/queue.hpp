// Bounded two-priority MPMC work queue for the serving gateway.
//
// The queue is the admission-control point of the serving front-end:
// it is *bounded* so that an overloaded portal rejects work at the door
// (callers see kFull and shed) instead of buffering unbounded requests
// whose deadlines will have long expired by the time a worker picks
// them up. Two priority bands cover the portal reality that an
// interactive "scientist is waiting" request must overtake a batch
// prefetch sweep: pop() drains the high band first, FIFO within each
// band — but with a *starvation bound*: after `high_burst_limit`
// consecutive high-band pops while normal work waits, one normal item
// is popped, so sustained high-priority load delays the normal band by
// at most a bounded factor instead of forever.
//
// Concurrency model: one mutex + one condition variable. Producers
// never block (try_push returns kFull/kClosed immediately); consumers
// block in pop() until an item arrives or the queue is closed and
// drained. close()/drain() wake every consumer so a worker pool can
// shut down deterministically: drain() hands the caller everything
// still queued (to be shed and counted — never silently dropped) while
// in-flight items, by definition already popped, finish on their
// workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/lockorder.hpp"

namespace ckat::serve {

template <typename T>
class BoundedPriorityQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  /// `high_burst_limit` bounds starvation of the normal band: at most
  /// that many high-band items pop in a row while a normal item waits
  /// (0 = strict priority, normal work can starve indefinitely).
  explicit BoundedPriorityQueue(std::size_t capacity,
                                std::size_t high_burst_limit = 8)
      : capacity_(capacity), high_burst_limit_(high_burst_limit) {}

  BoundedPriorityQueue(const BoundedPriorityQueue&) = delete;
  BoundedPriorityQueue& operator=(const BoundedPriorityQueue&) = delete;

  /// Non-blocking admission: kFull when the two bands together hold
  /// `capacity` items (the caller sheds), kClosed after close()/drain().
  /// The item is only consumed on kOk — on rejection the caller keeps
  /// it (and, in the gateway, still owes its promise an answer).
  PushResult try_push(T&& item, bool high_priority = false) {
    {
      std::lock_guard<util::OrderedMutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (high_.size() + normal_.size() >= capacity_) {
        return PushResult::kFull;
      }
      auto& band = high_priority ? high_ : normal_;
      band.push_back(std::move(item));
      const std::size_t depth = high_.size() + normal_.size();
      if (depth > high_water_) high_water_ = depth;
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks until an item is available (high band first, subject to the
  /// starvation bound) or the queue is closed and empty, which returns
  /// nullopt — the consumer's signal to exit its loop.
  std::optional<T> pop() {
    std::unique_lock<util::OrderedMutex> lock(mutex_);
    not_empty_.wait(lock, [this] {
      return closed_ || !high_.empty() || !normal_.empty();
    });
    // Starvation bound: once `high_burst_limit_` high-band items popped
    // in a row with normal work waiting, the next pop serves the normal
    // band even though high items are queued.
    const bool yield_to_normal = high_burst_limit_ > 0 &&
                                 high_streak_ >= high_burst_limit_ &&
                                 !normal_.empty();
    const bool take_high = !high_.empty() && !yield_to_normal;
    auto& band = take_high ? high_ : normal_;
    if (band.empty()) return std::nullopt;  // closed and drained
    if (take_high && !normal_.empty()) {
      ++high_streak_;
    } else {
      high_streak_ = 0;
    }
    T item = std::move(band.front());
    band.pop_front();
    return item;
  }

  /// Closes the queue and returns everything still buffered, high band
  /// first, so the caller can shed each item with an answer attached.
  std::vector<T> drain() {
    std::vector<T> leftovers;
    {
      std::lock_guard<util::OrderedMutex> lock(mutex_);
      closed_ = true;
      leftovers.reserve(high_.size() + normal_.size());
      for (auto& item : high_) leftovers.push_back(std::move(item));
      for (auto& item : normal_) leftovers.push_back(std::move(item));
      high_.clear();
      normal_.clear();
    }
    not_empty_.notify_all();
    return leftovers;
  }

  /// Closes without draining: consumers keep popping what is buffered,
  /// then see nullopt.
  void close() {
    {
      std::lock_guard<util::OrderedMutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<util::OrderedMutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<util::OrderedMutex> lock(mutex_);
    return high_.size() + normal_.size();
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Deepest the queue has been since construction — the overload
  /// fingerprint an operator checks first when sizing `capacity`.
  [[nodiscard]] std::size_t high_water_mark() const {
    std::lock_guard<util::OrderedMutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t capacity_;
  const std::size_t high_burst_limit_;
  // Named for the lock-order validator (DESIGN.md section 15); the
  // condition variable is _any because OrderedMutex is a Lockable,
  // not std::mutex.
  mutable util::OrderedMutex mutex_{"gateway.queue"};
  std::condition_variable_any not_empty_;
  std::deque<T> high_;    // guarded by mutex_
  std::deque<T> normal_;  // guarded by mutex_
  std::size_t high_water_ = 0;  // guarded by mutex_
  /// Consecutive high-band pops while normal items waited.
  std::size_t high_streak_ = 0;  // guarded by mutex_
  bool closed_ = false;  // guarded by mutex_
};

}  // namespace ckat::serve
