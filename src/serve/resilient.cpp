#include "serve/resilient.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>
#include <thread>

#include "obs/flight.hpp"
#include "obs/metric_names.hpp"
#include "obs/trace.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::serve {

namespace {
std::string format_deadline_error(double elapsed_ms, double budget_ms) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "deadline exceeded (%.1f ms > budget %.1f ms)",
                elapsed_ms, budget_ms);
  return buf;
}

std::string format_corruption_error(std::size_t index) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "non-finite score at index %zu",
                index);
  return buf;
}

/// Index of the first non-finite score, or npos when the answer is clean.
std::size_t first_non_finite(std::span<const float> out) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (!std::isfinite(out[i])) return i;
  }
  return static_cast<std::size_t>(-1);
}
}  // namespace

ResilientRecommender::ResilientRecommender(
    std::vector<const eval::Recommender*> tiers, ResilientConfig config)
    : tiers_(std::move(tiers)), config_(config) {
  if (tiers_.empty()) {
    throw std::invalid_argument(
        "ResilientRecommender: at least one tier required");
  }
  if (config_.failure_threshold < 1) {
    throw std::invalid_argument(
        "ResilientRecommender: failure_threshold must be >= 1");
  }
  for (const eval::Recommender* tier : tiers_) {
    if (tier == nullptr) {
      throw std::invalid_argument("ResilientRecommender: null tier");
    }
    if (tier->n_users() != tiers_.front()->n_users() ||
        tier->n_items() != tiers_.front()->n_items()) {
      throw std::invalid_argument(
          "ResilientRecommender: tiers disagree on n_users/n_items");
    }
  }
  states_.resize(tiers_.size());
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    TierState& state = states_[i];
    state.stats.name = tiers_[i]->name();
    const obs::LabelSet tier_label = {{"tier", state.stats.name}};
    state.latency_hist = &registry.histogram(
        obs::metric_names::kServeTierLatencySeconds, tier_label);
    state.open_transitions = &registry.counter(
        obs::metric_names::kServeCircuitTransitionsTotal,
        {{"tier", state.stats.name}, {"to", "open"}});
    state.close_transitions = &registry.counter(
        obs::metric_names::kServeCircuitTransitionsTotal,
        {{"tier", state.stats.name}, {"to", "closed"}});
  }
}

std::string ResilientRecommender::name() const {
  std::string chain = "Resilient(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) chain += " > ";
    chain += tiers_[i]->name();
  }
  return chain + ")";
}

std::size_t ResilientRecommender::n_users() const {
  return tiers_.front()->n_users();
}

std::size_t ResilientRecommender::n_items() const {
  return tiers_.front()->n_items();
}

void ResilientRecommender::record_latency(TierState& tier,
                                          double elapsed_ms) const {
  ++tier.stats.attempts;
  tier.latency_sum_ms += elapsed_ms;
  tier.stats.latency_mean_ms =
      tier.latency_sum_ms / static_cast<double>(tier.stats.attempts);
  if (tier.stats.attempts == 1 || elapsed_ms < tier.stats.latency_min_ms) {
    tier.stats.latency_min_ms = elapsed_ms;
  }
  tier.stats.latency_max_ms =
      std::max(tier.stats.latency_max_ms, elapsed_ms);
  tier.latency_hist->observe(elapsed_ms * 1e-3);
}

void ResilientRecommender::record_failure(TierState& tier,
                                          std::string error) const {
  ++tier.stats.failures;
  ++tier.consecutive_failures;
  tier.stats.last_error = std::move(error);
  if (!tier.stats.circuit_open &&
      tier.consecutive_failures >= config_.failure_threshold) {
    tier.stats.circuit_open = true;
    tier.requests_since_open = 0;
    tier.open_transitions->inc();
    obs::trace_event("serve.circuit_open",
                     {{"tier", tier.stats.name},
                      {"last_error", tier.stats.last_error}});
    obs::flight_anomaly("circuit_open",
                        {{"tier", tier.stats.name},
                         {"last_error", tier.stats.last_error}});
    CKAT_LOG_WARN("[serve] circuit opened for tier '%s' after %d "
                  "consecutive failures",
                  tier.stats.name.c_str(), tier.consecutive_failures);
  }
}

void ResilientRecommender::score_items(std::uint32_t user,
                                       std::span<float> out) const {
  score_with_budget(user, out, config_.deadline_ms);
}

ResilientRecommender::ScoreOutcome ResilientRecommender::score_with_budget(
    std::uint32_t user, std::span<float> out, double budget_ms) const {
  const std::size_t bitflip_index = out.empty() ? 0 : user % out.size();
  return walk_chain(out, budget_ms, 1, bitflip_index,
                    [user](const eval::Recommender& tier,
                           std::span<float> scores) {
                      tier.score_items(user, scores);
                    });
}

ResilientRecommender::ScoreOutcome
ResilientRecommender::score_batch_with_budget(
    std::span<const std::uint32_t> users, std::span<float> out,
    double budget_ms) const {
  if (users.empty()) {
    throw std::invalid_argument(
        "ResilientRecommender: score_batch_with_budget needs >= 1 user");
  }
  if (out.size() != users.size() * n_items()) {
    throw std::invalid_argument(
        "ResilientRecommender: output span size mismatch");
  }
  const std::size_t bitflip_index =
      out.empty() ? 0 : users.front() % out.size();
  return walk_chain(out, budget_ms, users.size(), bitflip_index,
                    [users](const eval::Recommender& tier,
                            std::span<float> scores) {
                      tier.score_batch(users, scores);
                    });
}

ResilientRecommender::ScoreOutcome ResilientRecommender::walk_chain(
    std::span<float> out, double budget_ms, std::uint64_t weight,
    std::size_t bitflip_index, const TierInvoke& invoke) const {
  requests_ += weight;
  auto& injector = util::FaultInjector::instance();
  ScoreOutcome outcome;
  util::Timer walk_timer;
  // Nests under the caller's open span on this thread (the gateway
  // worker's adopted "gateway.worker"), so per-tier attempts below land
  // inside the per-request tree.
  obs::TraceSpan walk_span("serve.walk");

  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    TierState& tier = states_[i];

    // Deadline propagation: a tier only gets the budget still unspent
    // when it starts. Once the walk itself is over budget, attempting
    // further tiers would just serve answers the caller already
    // considers stale — stop and let the caller shed.
    const double tier_budget_ms =
        budget_ms > 0.0 ? budget_ms - walk_timer.milliseconds() : 0.0;
    if (budget_ms > 0.0 && tier_budget_ms <= 0.0) {
      budget_exhausted_ += weight;
      std::fill(out.begin(), out.end(), 0.0f);
      outcome.kind = ScoreOutcome::Kind::kBudgetExhausted;
      outcome.elapsed_ms = walk_timer.milliseconds();
      return outcome;
    }

    if (tier.stats.circuit_open) {
      // Half-open probe: after retry_after skipped requests, let one
      // request through to test whether the tier recovered.
      if (++tier.requests_since_open < config_.retry_after) {
        ++tier.stats.skipped_open;
        continue;
      }
      tier.requests_since_open = 0;
    }

    bool ok = false;
    std::string error;
    util::Timer timer;
    obs::TraceSpan tier_span("serve.tier", {{"tier", tier.stats.name}});
    // Real latency injection: the sleep lands inside the timed region,
    // so deadline misses and budget exhaustion reflect true elapsed
    // time (unlike the simulated kScoreTimeout stall below).
    if (injector.enabled()) {
      const double delay_ms = injector.fire_delay_ms(
          std::string(util::fault_points::kScoreDelay) + ":" +
          tier.stats.name);
      if (delay_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(delay_ms));
      }
    }
    try {
      invoke(*tiers_[i], out);
      ok = true;
    } catch (const std::exception& e) {
      ++tier.stats.exceptions;
      error = e.what();
      CKAT_LOG_DEBUG("[serve] tier '%s' threw: %s", tier.stats.name.c_str(),
                     e.what());
    }
    if (ok && injector.enabled() &&
        injector.should_fire(std::string(util::fault_points::kScoreThrow) +
                             ":" + tier.stats.name)) {
      ++tier.stats.exceptions;
      error = std::string("injected fault: ") +
              util::fault_points::kScoreThrow;
      ok = false;
    }
    if (ok) {
      // Corrupted answers (NaN/inf from bad model state, or an injected
      // bit-flip) must never reach a client: fail the tier instead.
      if (!out.empty() && injector.enabled() &&
          injector.should_fire(
              std::string(util::fault_points::kScoreBitflip) + ":" +
              tier.stats.name)) {
        out[bitflip_index] = std::numeric_limits<float>::quiet_NaN();
      }
      const std::size_t bad = first_non_finite(out);
      if (bad != static_cast<std::size_t>(-1)) {
        ++tier.stats.corrupted;
        error = format_corruption_error(bad);
        ok = false;
      }
    }
    if (ok && budget_ms > 0.0) {
      // Simulated stall (fault injection) or a genuinely slow tier: the
      // answer arrived after the remaining budget, so it is discarded
      // as stale.
      const bool stalled =
          injector.enabled() &&
          injector.should_fire(
              std::string(util::fault_points::kScoreTimeout) + ":" +
              tier.stats.name);
      const double elapsed_ms = timer.milliseconds();
      if (stalled || elapsed_ms > tier_budget_ms) {
        ++tier.stats.deadline_misses;
        error = stalled ? std::string("injected fault: ") +
                              util::fault_points::kScoreTimeout
                        : format_deadline_error(elapsed_ms, tier_budget_ms);
        ok = false;
      }
    }
    record_latency(tier, timer.milliseconds());
    tier_span.add_attr("ok", ok ? "true" : "false");

    if (ok) {
      tier.consecutive_failures = 0;
      if (tier.stats.circuit_open) {
        tier.stats.circuit_open = false;
        tier.close_transitions->inc();
        obs::trace_event("serve.circuit_close", {{"tier", tier.stats.name}});
        CKAT_LOG_INFO("[serve] circuit closed for tier '%s' (probe "
                      "succeeded)",
                      tier.stats.name.c_str());
      }
      tier.stats.served += weight;
      if (i > 0) fallback_activations_ += weight;
      outcome.kind = ScoreOutcome::Kind::kServed;
      outcome.tier = static_cast<int>(i);
      outcome.elapsed_ms = walk_timer.milliseconds();
      return outcome;
    }
    record_failure(tier, std::move(error));
  }

  // Unreachable with a popularity terminal tier, but a serving layer
  // must degrade, not throw: answer with indifferent scores.
  std::fill(out.begin(), out.end(), 0.0f);
  zero_filled_ += weight;
  outcome.kind = ScoreOutcome::Kind::kZeroFilled;
  outcome.elapsed_ms = walk_timer.milliseconds();
  return outcome;
}

ResilientRecommender::HealthSnapshot ResilientRecommender::snapshot() const {
  HealthSnapshot health;
  health.model_version = model_version_;
  health.requests = requests_;
  health.fallback_activations = fallback_activations_;
  health.zero_filled = zero_filled_;
  health.budget_exhausted = budget_exhausted_;
  health.tiers.reserve(states_.size());
  for (const TierState& tier : states_) {
    health.tiers.push_back(tier.stats);
  }
  return health;
}

void ResilientRecommender::reset_circuits() {
  for (TierState& tier : states_) {
    tier.stats.circuit_open = false;
    tier.consecutive_failures = 0;
    tier.requests_since_open = 0;
  }
}

obs::JsonValue health_to_json(
    const ResilientRecommender::HealthSnapshot& health) {
  obs::JsonValue tiers = obs::JsonValue::array();
  for (const auto& tier : health.tiers) {
    obs::JsonValue t = obs::JsonValue::object();
    t.set("name", obs::JsonValue(tier.name));
    t.set("served", obs::JsonValue(tier.served));
    t.set("failures", obs::JsonValue(tier.failures));
    t.set("exceptions", obs::JsonValue(tier.exceptions));
    t.set("deadline_misses", obs::JsonValue(tier.deadline_misses));
    t.set("corrupted", obs::JsonValue(tier.corrupted));
    t.set("skipped_open", obs::JsonValue(tier.skipped_open));
    t.set("circuit_open", obs::JsonValue(tier.circuit_open));
    t.set("last_error", obs::JsonValue(tier.last_error));
    t.set("attempts", obs::JsonValue(tier.attempts));
    t.set("latency_min_ms", obs::JsonValue(tier.latency_min_ms));
    t.set("latency_mean_ms", obs::JsonValue(tier.latency_mean_ms));
    t.set("latency_max_ms", obs::JsonValue(tier.latency_max_ms));
    tiers.push_back(std::move(t));
  }
  obs::JsonValue root = obs::JsonValue::object();
  root.set("model_version", obs::JsonValue(health.model_version));
  root.set("requests", obs::JsonValue(health.requests));
  root.set("fallback_activations", obs::JsonValue(health.fallback_activations));
  root.set("zero_filled", obs::JsonValue(health.zero_filled));
  root.set("budget_exhausted", obs::JsonValue(health.budget_exhausted));
  root.set("tiers", std::move(tiers));
  return root;
}

ResilientRecommender::HealthSnapshot aggregate_health(
    const std::vector<ResilientRecommender::HealthSnapshot>& parts) {
  ResilientRecommender::HealthSnapshot total;
  // Coherence across hot swaps: merge only the newest generation
  // present. Mixing counters from chains over different model versions
  // would add apples to oranges (different vocab widths, tier history).
  for (const auto& part : parts) {
    total.model_version = std::max(total.model_version, part.model_version);
  }
  for (const auto& part : parts) {
    if (part.model_version != total.model_version) continue;
    total.requests += part.requests;
    total.fallback_activations += part.fallback_activations;
    total.zero_filled += part.zero_filled;
    total.budget_exhausted += part.budget_exhausted;
    if (total.tiers.size() < part.tiers.size()) {
      total.tiers.resize(part.tiers.size());
    }
    for (std::size_t i = 0; i < part.tiers.size(); ++i) {
      const auto& tier = part.tiers[i];
      auto& merged = total.tiers[i];
      if (merged.name.empty()) merged.name = tier.name;
      merged.served += tier.served;
      merged.failures += tier.failures;
      merged.exceptions += tier.exceptions;
      merged.deadline_misses += tier.deadline_misses;
      merged.corrupted += tier.corrupted;
      merged.skipped_open += tier.skipped_open;
      merged.circuit_open = merged.circuit_open || tier.circuit_open;
      if (merged.last_error.empty()) merged.last_error = tier.last_error;
      if (tier.attempts > 0) {
        if (merged.attempts == 0 ||
            tier.latency_min_ms < merged.latency_min_ms) {
          merged.latency_min_ms = tier.latency_min_ms;
        }
        merged.latency_max_ms =
            std::max(merged.latency_max_ms, tier.latency_max_ms);
        // Attempt-weighted mean: sum the per-worker latency totals back
        // up before dividing by the fleet-wide attempt count.
        const double merged_sum =
            merged.latency_mean_ms * static_cast<double>(merged.attempts) +
            tier.latency_mean_ms * static_cast<double>(tier.attempts);
        merged.attempts += tier.attempts;
        merged.latency_mean_ms =
            merged_sum / static_cast<double>(merged.attempts);
      }
    }
  }
  return total;
}

}  // namespace ckat::serve
