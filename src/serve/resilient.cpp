#include "serve/resilient.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::serve {

ResilientRecommender::ResilientRecommender(
    std::vector<const eval::Recommender*> tiers, ResilientConfig config)
    : tiers_(std::move(tiers)), config_(config) {
  if (tiers_.empty()) {
    throw std::invalid_argument(
        "ResilientRecommender: at least one tier required");
  }
  if (config_.failure_threshold < 1) {
    throw std::invalid_argument(
        "ResilientRecommender: failure_threshold must be >= 1");
  }
  for (const eval::Recommender* tier : tiers_) {
    if (tier == nullptr) {
      throw std::invalid_argument("ResilientRecommender: null tier");
    }
    if (tier->n_users() != tiers_.front()->n_users() ||
        tier->n_items() != tiers_.front()->n_items()) {
      throw std::invalid_argument(
          "ResilientRecommender: tiers disagree on n_users/n_items");
    }
  }
  states_.resize(tiers_.size());
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    states_[i].stats.name = tiers_[i]->name();
  }
}

std::string ResilientRecommender::name() const {
  std::string chain = "Resilient(";
  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    if (i > 0) chain += " > ";
    chain += tiers_[i]->name();
  }
  return chain + ")";
}

std::size_t ResilientRecommender::n_users() const {
  return tiers_.front()->n_users();
}

std::size_t ResilientRecommender::n_items() const {
  return tiers_.front()->n_items();
}

void ResilientRecommender::record_failure(TierState& tier) const {
  ++tier.stats.failures;
  ++tier.consecutive_failures;
  if (!tier.stats.circuit_open &&
      tier.consecutive_failures >= config_.failure_threshold) {
    tier.stats.circuit_open = true;
    tier.requests_since_open = 0;
    CKAT_LOG_WARN("[serve] circuit opened for tier '%s' after %d "
                  "consecutive failures",
                  tier.stats.name.c_str(), tier.consecutive_failures);
  }
}

void ResilientRecommender::score_items(std::uint32_t user,
                                       std::span<float> out) const {
  ++requests_;
  auto& injector = util::FaultInjector::instance();

  for (std::size_t i = 0; i < tiers_.size(); ++i) {
    TierState& tier = states_[i];

    if (tier.stats.circuit_open) {
      // Half-open probe: after retry_after skipped requests, let one
      // request through to test whether the tier recovered.
      if (++tier.requests_since_open < config_.retry_after) {
        ++tier.stats.skipped_open;
        continue;
      }
      tier.requests_since_open = 0;
    }

    bool ok = false;
    util::Timer timer;
    try {
      tiers_[i]->score_items(user, out);
      ok = true;
    } catch (const std::exception& e) {
      ++tier.stats.exceptions;
      CKAT_LOG_DEBUG("[serve] tier '%s' threw: %s", tier.stats.name.c_str(),
                     e.what());
    }
    if (ok && injector.enabled() &&
        injector.should_fire(std::string(util::fault_points::kScoreThrow) +
                             ":" + tier.stats.name)) {
      ++tier.stats.exceptions;
      ok = false;
    }
    if (ok && config_.deadline_ms > 0.0) {
      // Simulated stall (fault injection) or a genuinely slow tier: the
      // answer arrived after the budget, so it is discarded as stale.
      const bool stalled =
          injector.enabled() &&
          injector.should_fire(
              std::string(util::fault_points::kScoreTimeout) + ":" +
              tier.stats.name);
      if (stalled || timer.milliseconds() > config_.deadline_ms) {
        ++tier.stats.deadline_misses;
        ok = false;
      }
    }

    if (ok) {
      tier.consecutive_failures = 0;
      if (tier.stats.circuit_open) {
        tier.stats.circuit_open = false;
        CKAT_LOG_INFO("[serve] circuit closed for tier '%s' (probe "
                      "succeeded)",
                      tier.stats.name.c_str());
      }
      ++tier.stats.served;
      if (i > 0) ++fallback_activations_;
      return;
    }
    record_failure(tier);
  }

  // Unreachable with a popularity terminal tier, but a serving layer
  // must degrade, not throw: answer with indifferent scores.
  std::fill(out.begin(), out.end(), 0.0f);
  ++zero_filled_;
}

ResilientRecommender::HealthSnapshot ResilientRecommender::snapshot() const {
  HealthSnapshot health;
  health.requests = requests_;
  health.fallback_activations = fallback_activations_;
  health.zero_filled = zero_filled_;
  health.tiers.reserve(states_.size());
  for (const TierState& tier : states_) {
    health.tiers.push_back(tier.stats);
  }
  return health;
}

void ResilientRecommender::reset_circuits() {
  for (TierState& tier : states_) {
    tier.stats.circuit_open = false;
    tier.consecutive_failures = 0;
    tier.requests_since_open = 0;
  }
}

}  // namespace ckat::serve
