// Sharded serving that survives partial failure.
//
// The million-user scale tier (facility/scale.hpp) makes one embedding
// table per process untenable as an availability story: one corrupted
// model file or one stalled scorer takes down every item for every
// user. This layer splits the *item catalog* across N shards on a
// consistent-hash ring, serves each shard from R replicas, and answers
// every request by fanning across the shards — so the failure unit is
// one replica of one shard, never the process:
//
//  * Shard files: each replica owns its own on-disk copy of its shard's
//    embedding slice (write_shard_file / MmapShardStore), mapped
//    read-only with mmap. The header and payload are CRC-guarded: a
//    truncated or bit-flipped file fails validation at open and the
//    replica comes up (or back) dead while its sibling keeps serving.
//    Fault points shard.open_fail / shard.corrupt (util/fault.hpp)
//    inject exactly those failures.
//  * Replica chains: every replica wraps its mmap slice tier in a
//    ResilientRecommender with a shard-local popularity prior as the
//    terminal tier, so per-tier circuits, deadline budgets and fault
//    points (e.g. serve.score_delay:shard3-r0) all compose unchanged.
//  * Hedged requests: the primary replica (round-robin) gets a budget
//    derived from its own p95 latency (observed via obs histograms,
//    floored at hedge_min_ms); if it misses, the sibling is hedged with
//    the remaining budget. Error-driven sibling attempts count as
//    failovers, latency-driven ones as hedges.
//  * Health and recovery: consecutive replica failures trip the replica
//    (its store is closed and requests skip it); a background probe
//    thread periodically re-opens the shard file — re-running CRC
//    validation, so a corrupt file stays down — and canary-scores it,
//    restoring the replica when it answers again.
//  * Partial answers: a request's outcome carries an explicit coverage
//    fraction (covered items / catalog). All replicas of a shard down
//    => that slice is zero-filled and the answer is *partial*, not an
//    error; the gateway surfaces this as kServedPartial and extends its
//    conservation identity with the served_partial lane.
//
// Thread safety: score() may be called from many gateway workers
// concurrently. Each replica serializes its (not thread-safe) chain
// behind its own mutex, so the concurrency unit is N*R replicas; router
// counters are atomics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/recommender.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/resilient.hpp"
#include "util/lockorder.hpp"

namespace ckat::serve {

/// Consistent-hash ring over shards: item ids map to ring points via
/// splitmix-style hashing against `vnodes` virtual nodes per shard, so
/// adding a shard moves ~1/N of the catalog instead of rehashing it.
class ShardRing {
 public:
  explicit ShardRing(std::size_t n_shards, std::size_t vnodes = 64);

  [[nodiscard]] std::uint32_t shard_of(std::uint64_t key) const noexcept;
  [[nodiscard]] std::size_t n_shards() const noexcept { return n_shards_; }

 private:
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;  // sorted
  std::size_t n_shards_;
};

/// On-disk shard file layout (little-endian, host float format):
/// header, then n_local ascending item ids (uint32), then n_local*dim
/// floats row-major. header_crc covers the header bytes before it;
/// payload_crc covers everything after the header.
struct ShardFileHeader {
  char magic[8];                 // "CKATSHD1"
  std::uint32_t shard_id;
  std::uint32_t n_shards;
  std::uint32_t dim;
  std::uint32_t reserved;        // zero
  std::uint64_t n_items_total;   // catalog size (score-row width)
  std::uint64_t n_local;         // items in this slice
  std::uint32_t payload_crc;
  std::uint32_t header_crc;      // CRC of the 44 bytes above
};
static_assert(sizeof(ShardFileHeader) == 48,
              "shard header must be packed: 8+4*4+8+8+4+4");

/// Writes one replica's shard file (temp file + rename, so a crashed
/// writer never leaves a half-written file under the final name).
void write_shard_file(const std::string& path, std::uint32_t shard_id,
                      std::uint32_t n_shards, std::uint64_t n_items_total,
                      std::uint32_t dim,
                      std::span<const std::uint32_t> item_ids,
                      std::span<const float> vectors);

/// Read-only memory-mapped view of a shard file. open() throws on any
/// validation failure (bad magic, header/payload CRC mismatch, size
/// mismatch, out-of-range item ids) and honours the shard.open_fail /
/// shard.corrupt fault points — the caller (a replica) catches and
/// comes up dead; the process never dies on a bad shard file.
class MmapShardStore {
 public:
  [[nodiscard]] static std::shared_ptr<const MmapShardStore> open(
      const std::string& path);
  ~MmapShardStore();

  MmapShardStore(const MmapShardStore&) = delete;
  MmapShardStore& operator=(const MmapShardStore&) = delete;

  [[nodiscard]] std::uint32_t shard_id() const noexcept { return shard_id_; }
  [[nodiscard]] std::uint32_t n_shards() const noexcept { return n_shards_; }
  [[nodiscard]] std::uint32_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::uint64_t n_items_total() const noexcept {
    return n_items_total_;
  }
  [[nodiscard]] std::size_t n_local() const noexcept { return n_local_; }

  /// Global catalog ids of the slice, ascending.
  [[nodiscard]] std::span<const std::uint32_t> item_ids() const noexcept {
    return {ids_, n_local_};
  }
  /// Embedding of local row `i` (dim floats, mmap-backed).
  [[nodiscard]] std::span<const float> vector(std::size_t i) const noexcept {
    return {vectors_ + i * dim_, dim_};
  }

 private:
  MmapShardStore() = default;

  void* map_ = nullptr;
  std::size_t map_size_ = 0;
  int fd_ = -1;
  const std::uint32_t* ids_ = nullptr;
  const float* vectors_ = nullptr;
  std::uint32_t shard_id_ = 0;
  std::uint32_t n_shards_ = 0;
  std::uint32_t dim_ = 0;
  std::uint64_t n_items_total_ = 0;
  std::size_t n_local_ = 0;
};

/// Synthesizes a user's embedding into a dim-sized span. Must be
/// thread-safe (replicas call it concurrently); the scale tier's
/// user_vector is pure and qualifies.
using UserVectorFn =
    std::function<void(std::uint32_t user, std::span<float> out)>;

struct ShardRouterConfig {
  /// 0 = CKAT_SHARD_COUNT, else 4.
  int n_shards = 0;
  /// Replicas per shard; 0 = CKAT_SHARD_REPLICAS, else 2.
  int replicas = 0;
  /// Dead-replica probe cadence; 0 = CKAT_SHARD_PROBE_MS, else 25.
  double probe_interval_ms = 0.0;
  /// Floor of the p95-derived hedge delay; 0 = CKAT_SHARD_HEDGE_MIN_MS,
  /// else 1.0.
  double hedge_min_ms = 0.0;
  /// Budget a probe canary request gets before the replica stays down.
  double probe_budget_ms = 20.0;
  /// Consecutive failed requests that trip a replica.
  int replica_failure_threshold = 3;
  /// Per-replica fallback-chain tuning (circuits inside the chain).
  ResilientConfig replica_chain;
  /// Model generation the shard files carry; tags every replica chain
  /// so gateway by-version accounting extends to sharded serving.
  std::uint64_t model_version = 1;

  [[nodiscard]] static ShardRouterConfig from_env();
};

/// How one fan-out across the shards ended.
struct ShardOutcome {
  enum class Kind {
    kFull,        // every shard answered: coverage == 1
    kPartial,     // some slices zero-filled: 0 < coverage < 1
    kZeroFilled,  // no shard answered: coverage == 0
  };
  Kind kind = Kind::kZeroFilled;
  /// Fraction of the catalog scored by a live replica (the rest of the
  /// output row is zero-filled).
  double coverage = 0.0;
  std::uint32_t shards_failed = 0;
  std::uint32_t hedges = 0;     // latency-driven sibling attempts
  std::uint32_t failovers = 0;  // error-driven sibling attempts
  double elapsed_ms = 0.0;
};

/// Point-in-time router counters. Conservation identities (checked by
/// the chaos soak): requests == served_full + served_partial +
/// zero_filled, and for every shard ok + failed == requests (each
/// request touches each shard exactly once).
struct ShardRouterStats {
  std::uint64_t requests = 0;
  std::uint64_t served_full = 0;
  std::uint64_t served_partial = 0;
  std::uint64_t zero_filled = 0;
  std::uint64_t hedges = 0;
  std::uint64_t failovers = 0;
  std::uint64_t replica_trips = 0;
  std::uint64_t replica_recoveries = 0;
  struct PerShard {
    std::size_t n_local = 0;
    std::size_t healthy_replicas = 0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
  };
  std::vector<PerShard> shards;
};

class ShardRouter {
 public:
  /// Opens every replica's shard file under `dir` (written beforehand
  /// with write_catalog or write_shard_file). A replica whose file is
  /// missing/corrupt starts dead — construction still succeeds as long
  /// as the shard *topology* is learnable (at least one replica of at
  /// least one shard opened); a fully unreadable catalog throws.
  ShardRouter(std::string dir, std::size_t n_users, std::size_t n_items,
              std::size_t dim, UserVectorFn user_vector,
              ShardRouterConfig config = ShardRouterConfig::from_env());
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Slices a catalog across `n_shards` x `replicas` shard files under
  /// `dir` (each replica gets its own copy, so corrupting one file on
  /// disk kills exactly one replica). `item_vector` fills the embedding
  /// of a global item id.
  static void write_catalog(
      const std::string& dir, std::size_t n_shards, std::size_t replicas,
      std::size_t n_items, std::size_t dim,
      const std::function<void(std::uint32_t, std::span<float>)>& item_vector);

  /// Path of one replica's shard file under `dir`.
  [[nodiscard]] static std::string replica_path(const std::string& dir,
                                                std::size_t shard,
                                                std::size_t replica);

  /// Scores the full catalog for `user` into `out` (n_items floats):
  /// fans across every shard, hedging/failing over between replicas.
  /// Slices no replica could serve are zero-filled and reported via
  /// coverage. `budget_ms` caps the whole fan-out (0 = no deadline).
  /// Never throws on replica failure — that is the contract.
  ShardOutcome score(std::uint32_t user, std::span<float> out,
                     double budget_ms = 0.0,
                     const obs::TraceContext& trace = {});

  /// Chaos hook: drops a replica as if its store had failed (closed +
  /// marked unhealthy + counted as a trip). The probe thread may bring
  /// it back — corrupt its file on disk first to keep it down.
  void kill_replica(std::size_t shard, std::size_t replica);

  [[nodiscard]] bool replica_healthy(std::size_t shard,
                                     std::size_t replica) const;

  /// Runs one synchronous probe sweep over dead replicas (the same work
  /// the background thread does on its cadence) — deterministic
  /// recovery for tests and the soak.
  void probe_now();

  [[nodiscard]] ShardRouterStats stats() const;

  [[nodiscard]] std::size_t n_users() const noexcept { return n_users_; }
  [[nodiscard]] std::size_t n_items() const noexcept { return n_items_; }
  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] std::size_t n_shards() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t replicas_per_shard() const noexcept {
    return replicas_per_shard_;
  }
  [[nodiscard]] std::uint64_t model_version() const noexcept {
    return config_.model_version;
  }

 private:
  struct Replica {
    std::string path;   // immutable after construction
    std::string label;  // "shard<k>-r<j>", the chain tier name
    std::size_t shard_index = 0;
    std::size_t replica_index = 0;
    /// Fast-path health flag: readers skip dead replicas without taking
    /// the mutex. Written with release under the mutex, read acquire.
    std::atomic<bool> healthy{false};
    mutable util::OrderedMutex mutex{"shard.replica"};
    std::shared_ptr<const MmapShardStore> mapped_store;  // guarded by mutex
    std::unique_ptr<eval::Recommender> slice_tier;       // guarded by mutex
    std::unique_ptr<eval::Recommender> prior_tier;       // guarded by mutex
    std::unique_ptr<ResilientRecommender> slice_chain;   // guarded by mutex
    int fail_streak = 0;                                 // guarded by mutex
    obs::Histogram* latency_hist = nullptr;  // resolved once in ctor
  };

  struct Shard {
    std::vector<std::unique_ptr<Replica>> replica_slots;
    /// Global ids of this shard's slice (learned from the first replica
    /// that opened); immutable after construction.
    std::vector<std::uint32_t> slice_ids;
    std::atomic<std::uint64_t> next_primary{0};
    std::atomic<std::uint64_t> ok{0};
    std::atomic<std::uint64_t> failed{0};
  };

  /// Builds store + tiers + chain from the replica's file. Caller holds
  /// the replica mutex. Throws on open/validation failure.
  void open_replica_locked(Replica& replica) const;
  /// Drops store + chain; the replica serves nothing until re-opened.
  void close_replica_locked(Replica& replica) const;
  /// Counts a failed request against the replica; trips it (closes +
  /// unhealthy) at the configured threshold. Caller holds the mutex.
  void record_replica_failure_locked(Replica& replica,
                                     const char* cause);

  /// One shard's contribution: tries primary then sibling replicas with
  /// hedge budgets, fills `slice` (shard-local order) on success.
  bool score_shard(Shard& shard, std::uint32_t user, std::span<float> slice,
                   double remaining_ms, ShardOutcome& outcome);

  /// Hedge allowance for a replica: max(hedge_min, its p95) from the
  /// obs histogram once it has enough samples.
  [[nodiscard]] double hedge_delay_ms(const Replica& replica) const;

  /// Live replicas of one shard (atomic flags; no locks taken).
  [[nodiscard]] static std::size_t healthy_count(const Shard& shard);

  void probe_loop();
  void probe_sweep();

  std::string dir_;
  std::size_t n_users_ = 0;
  std::size_t n_items_ = 0;
  std::size_t dim_ = 0;
  UserVectorFn user_vector_;
  ShardRouterConfig config_;
  std::size_t replicas_per_shard_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> served_full_{0};
  std::atomic<std::uint64_t> served_partial_{0};
  std::atomic<std::uint64_t> zero_filled_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> replica_trips_{0};
  std::atomic<std::uint64_t> replica_recoveries_{0};

  util::OrderedMutex probe_mutex_{"shard.probe"};
  std::condition_variable_any probe_cv_;
  bool probe_stop_ = false;  // guarded by probe_mutex_
  std::thread probe_thread_;
};

}  // namespace ckat::serve
