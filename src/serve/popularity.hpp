// Item-popularity recommender: the fallback of last resort in the
// degraded-mode serving chain. It needs no training beyond counting the
// train-set interactions, holds no learned state that can corrupt, and
// scores in O(n_items) with no model evaluation — so it can always
// answer, even when every learned tier is down.
#pragma once

#include <vector>

#include "eval/recommender.hpp"
#include "graph/interactions.hpp"

namespace ckat::serve {

class PopularityRecommender final : public eval::Recommender {
 public:
  explicit PopularityRecommender(const graph::InteractionSet& train);

  [[nodiscard]] std::string name() const override { return "Popularity"; }
  /// Counts are taken in the constructor; fit() is a no-op so the model
  /// is servable immediately.
  void fit() override {}
  void score_items(std::uint32_t user, std::span<float> out) const override;
  /// Every row is the same popularity vector; one validated copy per
  /// user, no per-user virtual dispatch.
  void score_batch(std::span<const std::uint32_t> users,
                   std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override { return n_users_; }
  [[nodiscard]] std::size_t n_items() const override {
    return counts_.size();
  }

 private:
  std::size_t n_users_;
  std::vector<float> counts_;
};

}  // namespace ckat::serve
