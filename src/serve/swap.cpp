#include "serve/swap.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/flight.hpp"
#include "obs/metric_names.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"

namespace ckat::serve {

namespace {

int resolve_max_retries(int configured) {
  if (configured >= 0) return configured;
  return static_cast<int>(util::env_int("CKAT_SWAP_MAX_RETRIES", 8, 0, 1024));
}

}  // namespace

ModelHandle::ModelHandle(int max_acquire_retries)
    : max_acquire_retries_(resolve_max_retries(max_acquire_retries)) {
  auto& registry = obs::MetricsRegistry::global();
  publishes_total_ =
      &registry.counter(obs::metric_names::kSwapPublishesTotal);
  torn_retries_total_ =
      &registry.counter(obs::metric_names::kSwapTornReadRetriesTotal);
  version_gauge_ = &registry.gauge(obs::metric_names::kSwapModelVersion);
}

std::uint64_t ModelHandle::publish(
    std::vector<const eval::Recommender*> tiers, std::size_t n_users,
    std::size_t n_items, std::shared_ptr<const void> payload) {
  // Validate and fire the injected failure BEFORE touching any state:
  // a failed publish must leave the previous version serving
  // bit-identically.
  if (tiers.empty()) {
    throw std::invalid_argument("ModelHandle::publish: empty tier list");
  }
  for (const eval::Recommender* tier : tiers) {
    if (tier == nullptr) {
      throw std::invalid_argument("ModelHandle::publish: null tier");
    }
  }
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() && injector.should_fire(util::fault_points::kSwapPublishFail)) {
    throw std::runtime_error(std::string("injected fault: ") +
                             util::fault_points::kSwapPublishFail);
  }

  std::uint64_t version = 0;
  {
    std::lock_guard<util::OrderedMutex> lock(mutex_);
    version = epoch_.load(std::memory_order_relaxed) + 1;  // NOLINT(ckat-relaxed-atomic): read under mutex_, the only writer context — no concurrent ordering to establish
    auto next = std::make_shared<ModelVersion>();
    next->version = version;
    next->tiers = std::move(tiers);
    next->n_users = n_users;
    next->n_items = n_items;
    next->payload = std::move(payload);
    next->version_seal = version;
    current_ = std::move(next);
    // Mirror is advanced only here, under the same mutex, so it stays
    // monotone and equal to current_->version.
    epoch_.store(version, std::memory_order_relaxed);  // NOLINT(ckat-relaxed-atomic): monotone counter mirrored for lock-free version(); the snapshot itself synchronizes through mutex_, so no ordering is needed here
  }
  publishes_total_->inc();
  version_gauge_->set(static_cast<double>(version));
  obs::trace_event("swap.publish", {{"version", std::to_string(version)}});
  return version;
}

std::shared_ptr<const ModelVersion> ModelHandle::acquire() const {
  auto& injector = util::FaultInjector::instance();
  for (int attempt = 0; attempt <= max_acquire_retries_; ++attempt) {
    std::shared_ptr<const ModelVersion> snapshot;
    {
      std::lock_guard<util::OrderedMutex> lock(mutex_);
      snapshot = current_;
    }
    if (snapshot == nullptr) {
      throw std::logic_error(
          "ModelHandle::acquire: no model version published yet");
    }
    bool torn = !snapshot->sealed();
    if (injector.enabled() && injector.should_fire(util::fault_points::kSwapTornRead)) {
      torn = true;  // simulated tear: discard the snapshot and retry
    }
    if (!torn) return snapshot;
    torn_read_retries_.fetch_add(1, std::memory_order_relaxed);  // NOLINT(ckat-relaxed-atomic): diagnostic tally, only ever summed
    torn_retries_total_->inc();
  }
  obs::flight_anomaly(
      "torn_read_exhausted",
      {{"attempts", std::to_string(max_acquire_retries_ + 1)}});
  throw std::runtime_error(
      "ModelHandle::acquire: torn version read persisted after " +
      std::to_string(max_acquire_retries_ + 1) + " attempts");
}

std::uint64_t ModelHandle::version() const noexcept {
  return epoch_.load(std::memory_order_relaxed);  // NOLINT(ckat-relaxed-atomic): monotone mirror read for polling; consistency comes from acquire()
}

std::uint64_t ModelHandle::torn_read_retries() const noexcept {
  return torn_read_retries_.load(std::memory_order_relaxed);  // NOLINT(ckat-relaxed-atomic): diagnostic tally, only ever summed
}

}  // namespace ckat::serve
