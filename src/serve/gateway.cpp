#include "serve/gateway.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metric_names.hpp"
#include "obs/trace.hpp"
#include "serve/shard.hpp"
#include "util/contract.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ckat::serve {

namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// SLO names the gateway feeds; SloEngine::default_serving_slos uses the
// same names, and custom GatewayConfig::slos reuse them to subscribe.
constexpr const char* kSloAvailability = "availability";
constexpr const char* kSloLatency = "latency_p99";

}  // namespace

const char* to_string(RequestStatus status) noexcept {
  switch (status) {
    case RequestStatus::kServed: return "served";
    case RequestStatus::kServedPartial: return "served_partial";
    case RequestStatus::kZeroFilled: return "zero_filled";
    case RequestStatus::kShedQueueFull: return "shed_queue_full";
    case RequestStatus::kShedExpired: return "shed_expired";
    case RequestStatus::kShedRetryBudget: return "shed_retry_budget";
    case RequestStatus::kShedShutdown: return "shed_shutdown";
  }
  return "unknown";
}

double retry_backoff_ms(int attempt, std::uint64_t client_hash,
                        double base_ms, double cap_ms) noexcept {
  if (attempt < 1) attempt = 1;
  // Exponential growth capped before the jitter so the cap is a real
  // ceiling, computed without pow() overflow for absurd attempt counts.
  double backoff = base_ms;
  for (int i = 1; i < attempt && backoff < cap_ms; ++i) backoff *= 2.0;
  backoff = std::min(backoff, cap_ms);
  // Deterministic jitter in [0.5, 1.0): the same (client, attempt)
  // always waits the same time, but clients decorrelate.
  std::uint64_t state =
      client_hash ^ (0x9E3779B97F4A7C15ULL *
                     (static_cast<std::uint64_t>(attempt) + 1));
  const double u =
      static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  return backoff * (0.5 + 0.5 * u);
}

GatewayConfig GatewayConfig::from_env() {
  GatewayConfig config;
  // Fallback 0 = "not configured": the constructor substitutes its
  // hardware-derived defaults.
  config.threads =
      static_cast<int>(util::env_int("CKAT_SERVE_THREADS", 0, 1, 256));
  config.queue_depth = static_cast<std::size_t>(
      util::env_int("CKAT_SERVE_QUEUE_DEPTH", 0, 1, 1 << 20));
  return config;
}

namespace {

/// Wraps a static tier list in a handle with exactly one published
/// version (the legacy non-swapping construction path).
std::shared_ptr<ModelHandle> make_static_handle(
    std::vector<const eval::Recommender*> tiers) {
  if (tiers.empty()) {
    throw std::invalid_argument("ServeGateway: at least one tier required");
  }
  if (tiers.front() == nullptr) {
    throw std::invalid_argument("ServeGateway: null tier");
  }
  auto handle = std::make_shared<ModelHandle>();
  const std::size_t n_users = tiers.front()->n_users();
  const std::size_t n_items = tiers.front()->n_items();
  handle->publish(std::move(tiers), n_users, n_items);
  return handle;
}

}  // namespace

ServeGateway::ServeGateway(std::vector<const eval::Recommender*> tiers,
                           GatewayConfig config)
    : ServeGateway(make_static_handle(std::move(tiers)), config) {}

ServeGateway::ServeGateway(std::shared_ptr<ModelHandle> handle,
                           GatewayConfig config)
    : ServeGateway(std::move(handle), nullptr, config) {}

ServeGateway::ServeGateway(std::shared_ptr<ShardRouter> router,
                           GatewayConfig config)
    : ServeGateway(nullptr, std::move(router), config) {}

ServeGateway::ServeGateway(std::shared_ptr<ModelHandle> handle,
                           std::shared_ptr<ShardRouter> router,
                           GatewayConfig config)
    : config_(config),
      handle_(std::move(handle)),
      router_(std::move(router)),
      queue_(config.queue_depth > 0 ? config.queue_depth : 256) {
  if (router_ == nullptr &&
      (handle_ == nullptr || !handle_->has_version())) {
    throw std::invalid_argument(
        "ServeGateway: handle must have a published model version");
  }

  int threads = config_.threads;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = static_cast<int>(std::clamp(hw == 0 ? 2u : hw / 2, 2u, 8u));
  }
  config_.threads = threads;
  config_.queue_depth = queue_.capacity();
  if (config_.keep_versions == 0) {
    config_.keep_versions = static_cast<std::size_t>(
        util::env_int("CKAT_SWAP_KEEP_VERSIONS", 2, 1, 64));
  }

  // The chain walk gets its budget per request from the gateway; a
  // config-level deadline would double-count the queue wait.
  chain_config_ = config_.resilient;
  chain_config_.deadline_ms = 0.0;

  // Build each worker's chain for the current version eagerly: the
  // ResilientRecommender constructor validates tier agreement, so a
  // malformed initial version fails here instead of inside a worker.
  // Sharded mode has no per-worker chains — replicas own theirs.
  workers_.reserve(static_cast<std::size_t>(threads));
  if (router_ == nullptr) {
    const auto snapshot = handle_->acquire();
    for (int i = 0; i < threads; ++i) {
      auto worker = std::make_unique<Worker>();
      chain_for_locked(*worker, snapshot);
      workers_.push_back(std::move(worker));
    }
  } else {
    for (int i = 0; i < threads; ++i) {
      workers_.push_back(std::make_unique<Worker>());
    }
  }

  auto& registry = obs::MetricsRegistry::global();
  auto outcome_counter = [&registry](const char* outcome) {
    return &registry.counter(obs::metric_names::kGatewayRequestsTotal,
                             {{"outcome", outcome}});
  };
  requests_served_ = outcome_counter("served");
  requests_served_partial_ = outcome_counter("served_partial");
  requests_zero_filled_ = outcome_counter("zero_filled");
  requests_shed_queue_full_ = outcome_counter("shed_queue_full");
  requests_shed_expired_ = outcome_counter("shed_expired");
  requests_shed_retry_budget_ = outcome_counter("shed_retry_budget");
  requests_shed_shutdown_ = outcome_counter("shed_shutdown");
  queue_wait_seconds_ =
      &registry.histogram(obs::metric_names::kGatewayQueueSeconds);
  request_seconds_ =
      &registry.histogram(obs::metric_names::kGatewayServedSeconds);
  queue_high_water_gauge_ =
      &registry.gauge(obs::metric_names::kGatewayQueueHighWater);

  slo_ = std::make_unique<obs::SloEngine>(
      config_.slos.empty()
          ? obs::SloEngine::default_serving_slos(config_.default_deadline_ms)
          : config_.slos);

  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
  }
  CKAT_LOG_INFO("[gateway] serving with %d workers, queue depth %zu",
                threads, queue_.capacity());
}

ServeGateway::~ServeGateway() { shutdown(); }

bool ServeGateway::spend_retry_token(const std::string& client_id) {
  std::lock_guard<util::OrderedMutex> lock(retry_mutex_);
  auto [it, inserted] =
      retry_tokens_.try_emplace(client_id, config_.initial_retry_tokens);
  if (it->second < 1.0) return false;
  it->second -= 1.0;
  return true;
}

void ServeGateway::credit_retry_token(const std::string& client_id) {
  std::lock_guard<util::OrderedMutex> lock(retry_mutex_);
  auto [it, inserted] =
      retry_tokens_.try_emplace(client_id, config_.initial_retry_tokens);
  // The cap bounds how large a burst of retries a long-quiet client can
  // unleash at once.
  it->second = std::min(it->second + config_.retry_ratio,
                        2.0 * config_.initial_retry_tokens);
}

void ServeGateway::resolve_shed(Job&& job, RequestStatus status) {
  switch (status) {
    case RequestStatus::kShedQueueFull:
      shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
      requests_shed_queue_full_->inc();
      break;
    case RequestStatus::kShedExpired:
      shed_expired_.fetch_add(1, std::memory_order_relaxed);
      requests_shed_expired_->inc();
      break;
    case RequestStatus::kShedRetryBudget:
      shed_retry_budget_.fetch_add(1, std::memory_order_relaxed);
      requests_shed_retry_budget_->inc();
      break;
    case RequestStatus::kShedShutdown:
      shed_shutdown_.fetch_add(1, std::memory_order_relaxed);
      requests_shed_shutdown_->inc();
      break;
    case RequestStatus::kServed:
    case RequestStatus::kServedPartial:
    case RequestStatus::kZeroFilled:
      break;  // not sheds; handled by the worker loop
  }
  if (status != RequestStatus::kShedShutdown && obs::telemetry_enabled()) {
    // Shutdown sheds are operator-initiated, not availability failures.
    slo_->record(kSloAvailability, false);
  }
  note_shed_for_spike(status);
  obs::trace_event("gateway.shed", job.request.trace,
                   {{"reason", to_string(status)},
                    {"client", job.request.client_id}});
  // Shed traces are always interesting: keep them past tail sampling.
  obs::finish_trace(job.request.trace, obs::TraceVerdict::kKeep);
  ScoreResult result;
  result.status = status;
  job.promise.set_value(std::move(result));
}

void ServeGateway::note_shed_for_spike(RequestStatus status) {
  if (status == RequestStatus::kShedShutdown) return;
  if (config_.shed_spike_threshold == 0 || !obs::flight_enabled()) return;
  const std::uint64_t now_us = obs::trace_now_us();
  bool fire = false;
  {
    std::lock_guard<util::OrderedMutex> lock(shed_spike_mutex_);
    if (now_us - shed_window_start_us_ > 1'000'000) {
      shed_window_start_us_ = now_us;
      shed_window_count_ = 0;
    }
    ++shed_window_count_;
    // Rising edge only: one dump per spiking window, not one per shed.
    fire = shed_window_count_ == config_.shed_spike_threshold;
  }
  if (fire) {
    obs::flight_anomaly(
        "shed_spike",
        {{"reason", to_string(status)},
         {"sheds_in_window",
          std::to_string(config_.shed_spike_threshold)}});
  }
}

std::future<ScoreResult> ServeGateway::submit(ScoreRequest request) {
  submitted_.fetch_add(1, std::memory_order_relaxed);

  Job job;
  job.request = std::move(request);
  auto future = job.promise.get_future();

  if (stopping_.load(std::memory_order_relaxed)) {
    resolve_shed(std::move(job), RequestStatus::kShedShutdown);
    return future;
  }

  // Adopt the caller's trace when one is supplied; mint a fresh one
  // otherwise. The root span covers admission; queue wait and worker
  // execution attach under it from other threads via the context
  // carried in the request.
  if (obs::trace_enabled() && !job.request.trace.active()) {
    job.request.trace = obs::start_trace();
  }
  obs::TraceSpan root_span(
      "gateway.request", job.request.trace,
      {{"client", job.request.client_id},
       {"priority",
        job.request.priority == Priority::kHigh ? "high" : "normal"}});
  if (root_span.id() != 0) {
    job.request.trace = root_span.context();
    job.admitted_trace_us = obs::trace_now_us();
  }

  if (job.request.is_retry && !spend_retry_token(job.request.client_id)) {
    resolve_shed(std::move(job), RequestStatus::kShedRetryBudget);
    return future;
  }

  const double deadline_ms = job.request.deadline_ms > 0.0
                                 ? job.request.deadline_ms
                                 : config_.default_deadline_ms;
  job.admitted_at = Clock::now();
  job.deadline_ms = deadline_ms > 0.0 ? deadline_ms : 0.0;
  job.deadline_at =
      job.deadline_ms > 0.0
          ? job.admitted_at + std::chrono::duration_cast<Clock::duration>(
                                  std::chrono::duration<double, std::milli>(
                                      job.deadline_ms))
          : Clock::time_point::max();

  const bool is_retry = job.request.is_retry;
  const std::string client_id = job.request.client_id;
  const bool high_priority = job.request.priority == Priority::kHigh;
  // try_push only consumes the job on kOk; on rejection we still own it
  // and resolve its promise with the shed reason.
  switch (queue_.try_push(std::move(job), high_priority)) {
    case BoundedPriorityQueue<Job>::PushResult::kOk:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (!is_retry) credit_retry_token(client_id);
      break;
    case BoundedPriorityQueue<Job>::PushResult::kFull:
      resolve_shed(std::move(job), RequestStatus::kShedQueueFull);
      break;
    case BoundedPriorityQueue<Job>::PushResult::kClosed:
      resolve_shed(std::move(job), RequestStatus::kShedShutdown);
      break;
  }
  return future;
}

ResilientRecommender& ServeGateway::chain_for_locked(
    Worker& worker, const std::shared_ptr<const ModelVersion>& snapshot) {
  for (auto& entry : worker.chains) {
    if (entry.version->version == snapshot->version) return *entry.chain;
  }
  VersionedChain entry;
  entry.version = snapshot;
  entry.chain =
      std::make_unique<ResilientRecommender>(snapshot->tiers, chain_config_);
  entry.chain->set_model_version(snapshot->version);
  worker.chains.push_back(std::move(entry));
  // Prune oldest-first past the cache bound; the entry just added is
  // always kept, so the serving version never churns.
  const std::size_t keep = std::max<std::size_t>(config_.keep_versions, 1);
  while (worker.chains.size() > keep) {
    worker.chains.erase(worker.chains.begin());
  }
  return *worker.chains.back().chain;
}

void ServeGateway::count_version_resolution(std::uint64_t version,
                                            RequestStatus status) {
  std::lock_guard<util::OrderedMutex> lock(version_counts_mutex_);
  auto& lanes = version_counts_[version];
  switch (status) {
    case RequestStatus::kServed: ++lanes.served; break;
    case RequestStatus::kServedPartial: ++lanes.served_partial; break;
    default: ++lanes.zero_filled; break;
  }
}

void ServeGateway::worker_loop(Worker& worker) {
  while (auto job = queue_.pop()) {
    const auto dequeued_at = Clock::now();
    if (job->admitted_trace_us != 0) {
      // Close the cross-thread queue-wait span: opened (implicitly) at
      // admission on the submit thread, emitted here on the worker.
      obs::trace_emit_span("gateway.queue", job->request.trace,
                           job->admitted_trace_us, obs::trace_now_us());
    }
    if (job->deadline_ms > 0.0 && dequeued_at >= job->deadline_at) {
      // Stale before any work happened: shed without touching the
      // chain, so an overloaded queue cannot also waste worker time.
      resolve_shed(std::move(*job), RequestStatus::kShedExpired);
      continue;
    }
    const double remaining_ms =
        job->deadline_ms > 0.0 ? ms_between(dequeued_at, job->deadline_at)
                               : 0.0;

    if (router_ != nullptr) {
      serve_sharded(std::move(*job), remaining_ms);
      continue;
    }

    const bool is_batch = !job->request.users.empty();
    const std::size_t rows = is_batch ? job->request.users.size() : 1;
    // Adopting the request's context re-roots this thread's span stack
    // under the admission-side root span, so the tier walk's spans and
    // events join the same per-request tree.
    obs::TraceSpan work_span("gateway.worker", job->request.trace);
    ScoreResult result;
    result.queue_ms = ms_between(job->admitted_at, dequeued_at);

    // Resolve the serving model per request: everything downstream —
    // row width, chain, accounting — comes from this one snapshot, so
    // a concurrent publish can never produce a mixed-version answer.
    std::shared_ptr<const ModelVersion> snapshot;
    try {
      snapshot = handle_->acquire();
    } catch (const std::exception& error) {
      // Torn reads persisted past the retry bound (injected chaos).
      // The request still resolves exactly once: a zero-filled
      // degraded answer, accounted under version 0.
      CKAT_LOG_WARN("[gateway] acquire failed, zero-filling: %s",
                    error.what());
      result.status = RequestStatus::kZeroFilled;
      result.total_ms = ms_between(job->admitted_at, Clock::now());
      zero_filled_.fetch_add(1, std::memory_order_relaxed);
      requests_zero_filled_->inc();
      count_version_resolution(0, RequestStatus::kZeroFilled);
      if (obs::telemetry_enabled()) slo_->record(kSloAvailability, false);
      work_span.add_attr("model_version", "0");
      obs::finish_trace(job->request.trace, obs::TraceVerdict::kKeep);
      job->promise.set_value(std::move(result));
      continue;
    }
    result.model_version = snapshot->version;
    // The generation tag: which published model actually answered.
    work_span.add_attr("model_version", std::to_string(snapshot->version));
    result.scores.resize(rows * snapshot->n_items);

    // A user id beyond this version's vocabulary (a client that heard
    // about a cold-start user before the refresh published it) gets a
    // zero-filled answer of this version's row shape — never a tier
    // call that would index out of range.
    bool users_in_range = true;
    if (is_batch) {
      for (const std::uint32_t user : job->request.users) {
        if (user >= snapshot->n_users) {
          users_in_range = false;
          break;
        }
      }
    } else {
      users_in_range = job->request.user < snapshot->n_users;
    }

    ResilientRecommender::ScoreOutcome outcome;
    if (!users_in_range) {
      outcome.kind = ResilientRecommender::ScoreOutcome::Kind::kZeroFilled;
    } else {
      std::lock_guard<util::OrderedMutex> lock(worker.mutex);
      ResilientRecommender& chain = chain_for_locked(worker, snapshot);
      outcome = is_batch
                    ? chain.score_batch_with_budget(
                          job->request.users, result.scores, remaining_ms)
                    : chain.score_with_budget(job->request.user,
                                              result.scores, remaining_ms);
    }
    queue_wait_seconds_->observe_with_exemplar(result.queue_ms * 1e-3,
                                               job->request.trace.trace_id);
    result.total_ms = ms_between(job->admitted_at, Clock::now());

    using Kind = ResilientRecommender::ScoreOutcome::Kind;
    switch (outcome.kind) {
      case Kind::kServed:
        result.status = RequestStatus::kServed;
        result.tier = outcome.tier;
        result.coverage = 1.0;
        served_.fetch_add(1, std::memory_order_relaxed);
        requests_served_->inc();
        request_seconds_->observe_with_exemplar(
            result.total_ms * 1e-3, job->request.trace.trace_id);
        count_version_resolution(snapshot->version, RequestStatus::kServed);
        if (obs::telemetry_enabled()) {
          slo_->record(kSloAvailability, true);
          slo_->record_latency(kSloLatency, result.total_ms);
        }
        break;
      case Kind::kZeroFilled:
        result.status = RequestStatus::kZeroFilled;
        zero_filled_.fetch_add(1, std::memory_order_relaxed);
        requests_zero_filled_->inc();
        count_version_resolution(snapshot->version,
                                 RequestStatus::kZeroFilled);
        if (obs::telemetry_enabled()) slo_->record(kSloAvailability, false);
        break;
      case Kind::kBudgetExhausted:
        result.scores.clear();
        resolve_shed(std::move(*job), RequestStatus::kShedExpired);
        continue;
    }
    // Tail-sampling verdict: degraded answers and requests that burned
    // most of their deadline are always kept; healthy fast traces are
    // subject to 1-in-N sampling.
    const bool slow = job->deadline_ms > 0.0 &&
                      result.total_ms > 0.75 * job->deadline_ms;
    obs::finish_trace(job->request.trace,
                      result.status == RequestStatus::kServed && !slow
                          ? obs::TraceVerdict::kNormal
                          : obs::TraceVerdict::kKeep);
    job->promise.set_value(std::move(result));
  }
}

void ServeGateway::serve_sharded(Job&& job, double remaining_ms) {
  const auto started = Clock::now();
  const bool is_batch = !job.request.users.empty();
  const std::size_t rows = is_batch ? job.request.users.size() : 1;
  const std::size_t width = router_->n_items();

  obs::TraceSpan work_span("gateway.worker", job.request.trace);
  ScoreResult result;
  result.queue_ms = ms_between(job.admitted_at, started);
  result.model_version = router_->model_version();
  work_span.add_attr("model_version",
                     std::to_string(result.model_version));
  result.scores.resize(rows * width);

  bool users_in_range = true;
  if (is_batch) {
    for (const std::uint32_t user : job.request.users) {
      if (user >= router_->n_users()) {
        users_in_range = false;
        break;
      }
    }
  } else {
    users_in_range = job.request.user < router_->n_users();
  }

  // Fan each row across the shards. Rows share the request deadline:
  // the budget is recomputed per row, and rows the budget never reaches
  // stay zero-filled with zero coverage — degraded, never dropped.
  std::size_t full_rows = 0;
  std::size_t zero_rows = 0;
  double coverage_sum = 0.0;
  std::uint32_t shards_failed = 0;
  if (users_in_range) {
    for (std::size_t i = 0; i < rows; ++i) {
      const std::uint32_t user =
          is_batch ? job.request.users[i] : job.request.user;
      double row_budget = 0.0;
      if (job.deadline_ms > 0.0) {
        row_budget = ms_between(Clock::now(), job.deadline_at);
        if (row_budget <= 0.0) {
          zero_rows += rows - i;  // out of budget: rest stays zero
          break;
        }
      } else {
        row_budget = remaining_ms;
      }
      const ShardOutcome outcome = router_->score(
          user, std::span<float>(result.scores.data() + i * width, width),
          row_budget, job.request.trace);
      coverage_sum += outcome.coverage;
      shards_failed += outcome.shards_failed;
      if (outcome.kind == ShardOutcome::Kind::kFull) {
        ++full_rows;
      } else if (outcome.kind == ShardOutcome::Kind::kZeroFilled) {
        ++zero_rows;
      }
    }
  } else {
    zero_rows = rows;
  }

  queue_wait_seconds_->observe_with_exemplar(result.queue_ms * 1e-3,
                                             job.request.trace.trace_id);
  result.coverage = coverage_sum / static_cast<double>(rows);
  result.total_ms = ms_between(job.admitted_at, Clock::now());
  work_span.add_attr("coverage", std::to_string(result.coverage));

  if (full_rows == rows) {
    result.status = RequestStatus::kServed;
    result.tier = 0;
    result.coverage = 1.0;
    served_.fetch_add(1, std::memory_order_relaxed);
    requests_served_->inc();
  } else if (zero_rows == rows) {
    result.status = RequestStatus::kZeroFilled;
    result.coverage = 0.0;
    zero_filled_.fetch_add(1, std::memory_order_relaxed);
    requests_zero_filled_->inc();
  } else {
    result.status = RequestStatus::kServedPartial;
    result.tier = 0;
    served_partial_.fetch_add(1, std::memory_order_relaxed);
    requests_served_partial_->inc();
  }
  count_version_resolution(result.model_version, result.status);
  if (result.status != RequestStatus::kZeroFilled) {
    // Partial answers are *available* (the client got scored slices and
    // an honest coverage figure); capacity loss shows up in coverage
    // metrics, latency still feeds the latency SLO.
    request_seconds_->observe_with_exemplar(result.total_ms * 1e-3,
                                            job.request.trace.trace_id);
    if (obs::telemetry_enabled()) {
      slo_->record(kSloAvailability, true);
      slo_->record_latency(kSloLatency, result.total_ms);
    }
  } else if (obs::telemetry_enabled()) {
    slo_->record(kSloAvailability, false);
  }
  if (shards_failed > 0) {
    work_span.add_attr("shards_failed", std::to_string(shards_failed));
  }

  const bool slow = job.deadline_ms > 0.0 &&
                    result.total_ms > 0.75 * job.deadline_ms;
  obs::finish_trace(job.request.trace,
                    result.status == RequestStatus::kServed && !slow
                        ? obs::TraceVerdict::kNormal
                        : obs::TraceVerdict::kKeep);
  job.promise.set_value(std::move(result));
}

void ServeGateway::shutdown() {
  std::lock_guard<util::OrderedMutex> lock(shutdown_mutex_);
  if (shutdown_done_) return;
  stopping_.store(true, std::memory_order_relaxed);

  // Close admission and take ownership of everything still queued;
  // workers finish their in-flight request, observe the closed queue
  // and exit.
  std::vector<Job> leftovers = queue_.drain();
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
  for (auto& job : leftovers) {
    resolve_shed(std::move(job), RequestStatus::kShedShutdown);
  }
  queue_high_water_gauge_->set(
      static_cast<double>(queue_.high_water_mark()));
  obs::trace_event(
      "gateway.drain",
      {{"shed_shutdown", std::to_string(leftovers.size())}});
  CKAT_LOG_INFO("[gateway] drained: %zu queued requests shed at shutdown",
                leftovers.size());

#if defined(CKAT_VALIDATE)
  // Conservation self-check: with admission closed, the queue drained
  // and every worker joined, nothing is in flight, so the identity from
  // the file header must hold exactly.
  {
    const GatewayStats s = stats();
    CKAT_CHECK_INVARIANT(
        s.submitted ==
            s.served + s.served_partial + s.zero_filled + s.shed_total(),
        "gateway conservation: submitted=" + std::to_string(s.submitted) +
            " served=" + std::to_string(s.served) +
            " served_partial=" + std::to_string(s.served_partial) +
            " zero_filled=" + std::to_string(s.zero_filled) +
            " shed_total=" + std::to_string(s.shed_total()));
    // Per-version extension: every served/partial/zero-filled
    // resolution was attributed to exactly one model generation.
    std::uint64_t versioned_served = 0;
    std::uint64_t versioned_partial = 0;
    std::uint64_t versioned_zero_filled = 0;
    for (const auto& v : s.by_version) {
      versioned_served += v.served;
      versioned_partial += v.served_partial;
      versioned_zero_filled += v.zero_filled;
    }
    CKAT_CHECK_INVARIANT(
        versioned_served == s.served &&
            versioned_partial == s.served_partial &&
            versioned_zero_filled == s.zero_filled,
        "gateway per-version conservation: versioned_served=" +
            std::to_string(versioned_served) + " served=" +
            std::to_string(s.served) + " versioned_partial=" +
            std::to_string(versioned_partial) + " served_partial=" +
            std::to_string(s.served_partial) + " versioned_zero_filled=" +
            std::to_string(versioned_zero_filled) + " zero_filled=" +
            std::to_string(s.zero_filled));
  }
#endif
  shutdown_done_ = true;
}

GatewayStats ServeGateway::stats() const {
  GatewayStats stats;
  stats.submitted = submitted_.load(std::memory_order_relaxed);
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.served_partial = served_partial_.load(std::memory_order_relaxed);
  stats.zero_filled = zero_filled_.load(std::memory_order_relaxed);
  stats.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  stats.shed_expired = shed_expired_.load(std::memory_order_relaxed);
  stats.shed_retry_budget =
      shed_retry_budget_.load(std::memory_order_relaxed);
  stats.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  stats.queue_high_water = queue_.high_water_mark();
  queue_high_water_gauge_->set(static_cast<double>(stats.queue_high_water));
  {
    std::lock_guard<util::OrderedMutex> lock(version_counts_mutex_);
    stats.by_version.reserve(version_counts_.size());
    for (const auto& [version, lanes] : version_counts_) {
      stats.by_version.push_back(
          {version, lanes.served, lanes.served_partial, lanes.zero_filled});
    }
  }
  return stats;
}

std::size_t ServeGateway::n_items() const {
  return router_ != nullptr ? router_->n_items()
                            : handle_->acquire()->n_items;
}

ResilientRecommender::HealthSnapshot ServeGateway::aggregated_health() const {
  std::vector<ResilientRecommender::HealthSnapshot> parts;
  parts.reserve(workers_.size());
  for (const auto& worker : workers_) {
    std::lock_guard<util::OrderedMutex> lock(worker->mutex);
    for (const auto& entry : worker->chains) {
      parts.push_back(entry.chain->snapshot());
    }
  }
  // aggregate_health keeps only the newest generation present, so the
  // fleet view stays coherent mid-swap (workers that have not yet
  // served on the new version simply contribute nothing).
  return aggregate_health(parts);
}

std::vector<ResilientRecommender::HealthSnapshot>
ServeGateway::aggregated_health_by_version() const {
  std::map<std::uint64_t,
           std::vector<ResilientRecommender::HealthSnapshot>>
      grouped;
  for (const auto& worker : workers_) {
    std::lock_guard<util::OrderedMutex> lock(worker->mutex);
    for (const auto& entry : worker->chains) {
      auto snapshot = entry.chain->snapshot();
      grouped[snapshot.model_version].push_back(std::move(snapshot));
    }
  }
  std::vector<ResilientRecommender::HealthSnapshot> merged;
  merged.reserve(grouped.size());
  for (const auto& [version, parts] : grouped) {
    merged.push_back(aggregate_health(parts));
  }
  return merged;
}

void ServeGateway::reset_circuits() {
  for (const auto& worker : workers_) {
    std::lock_guard<util::OrderedMutex> lock(worker->mutex);
    for (const auto& entry : worker->chains) {
      entry.chain->reset_circuits();
    }
  }
}

}  // namespace ckat::serve
