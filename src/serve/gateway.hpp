// Overload-safe concurrent serving front-end.
//
// ServeGateway is the multi-threaded layer between portal clients and
// the degraded-mode fallback chains: requests are admitted into a
// bounded two-priority queue (queue.hpp) and executed by a fixed pool
// of workers, each owning a private ResilientRecommender chain over the
// shared (read-only) models — so the chain itself stays single-threaded
// while the gateway scales across cores. Overload protection, in the
// order a request meets it:
//
//  * Admission control: a full queue rejects at the door
//    (kShedQueueFull) instead of buffering doomed work; retries carry a
//    per-client budget (Finagle-style token bucket: each accepted
//    first-try request earns `retry_ratio` tokens, each retry spends
//    one) so a retry storm from one client cannot amplify an outage.
//    Clients pace retries with retry_backoff_ms(): exponential growth,
//    deterministic jitter.
//  * Expiry on dequeue: a request whose deadline passed while queued is
//    shed (kShedExpired) without touching a worker's chain.
//  * Deadline propagation: the worker hands the chain only the budget
//    still remaining after queueing; the tier walk propagates it
//    further (see resilient.hpp). A walk that runs out of budget is
//    shed as expired.
//  * Graceful drain: shutdown() closes admission, lets in-flight
//    requests finish, sheds everything still queued (kShedShutdown,
//    counted — never silently dropped), then joins the workers.
//
// Every submitted request resolves its future with exactly one status,
// so accounting is conservative by construction:
//   submitted == served + served_partial + zero_filled + shed_queue_full
//                + shed_expired + shed_retry_budget + shed_shutdown
// (served_partial only occurs in sharded mode, below; unsharded
// gateways never produce it, so their identity reads as before.) The
// chaos soak benches (bench/ext_overload_soak, bench/ext_shard_soak)
// assert this under concurrent clients, injected faults and real
// latency.
//
// Hot swap (swap.hpp): workers resolve the serving model per request
// through a shared ModelHandle, so a refresher can publish a new
// version — even one with a *grown* vocabulary — without pausing the
// pool. Each request scores, sizes its rows and is accounted entirely
// on the version it acquired; per-version served/zero_filled counts
// extend the identity above (sum over versions == totals), which the
// refresh soak (bench/ext_refresh_soak) asserts across live swaps.
//
// Sharded mode (shard.hpp): constructed over a ShardRouter instead of a
// model handle, workers fan each request across the router's shard
// replicas. A request some shard slices could not serve resolves as
// kServedPartial with an explicit coverage fraction (never an error):
// degraded capacity surfaces as reduced coverage, not reduced
// availability. The chaos soak (bench/ext_shard_soak) gates on the
// extended identity while replicas are killed and recovered mid-load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/lockorder.hpp"

#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "serve/queue.hpp"
#include "serve/resilient.hpp"
#include "serve/swap.hpp"

namespace ckat::serve {

class ShardRouter;
struct ShardOutcome;

enum class Priority : std::uint8_t { kNormal = 0, kHigh = 1 };

enum class RequestStatus : std::uint8_t {
  kServed,           // a tier answered within the deadline
  kServedPartial,    // sharded mode: answered, but some shard slices
                     // are zero-filled (see ScoreResult::coverage)
  kZeroFilled,       // every tier failed; indifferent scores returned
  kShedQueueFull,    // rejected at admission: queue at capacity
  kShedExpired,      // deadline passed in the queue or mid-walk
  kShedRetryBudget,  // rejected at admission: client retry budget empty
  kShedShutdown,     // still queued when the gateway drained
};

[[nodiscard]] const char* to_string(RequestStatus status) noexcept;

struct ScoreRequest {
  std::uint32_t user = 0;
  /// Non-empty makes this a *batch* request: `user` is ignored, the
  /// worker's chain scores all of `users` in one batched walk
  /// (score_batch_with_budget) and the result carries
  /// users.size() * n_items scores, row-major in `users` order. The
  /// whole batch occupies one queue slot, shares one deadline and
  /// resolves with one status — gateway conservation counts it as one
  /// request.
  std::vector<std::uint32_t> users;
  Priority priority = Priority::kNormal;
  /// Per-request deadline; 0 uses GatewayConfig::default_deadline_ms.
  double deadline_ms = 0.0;
  /// Retry-budget key; "" shares one anonymous budget.
  std::string client_id;
  /// True when the client re-submits after a shed/failure; spends one
  /// retry token at admission.
  bool is_retry = false;
  /// Cross-thread trace lineage. Left default, submit() mints a fresh
  /// trace (when tracing is enabled) whose spans connect across the
  /// queue hop; a caller that already owns a trace sets it so the
  /// gateway's spans attach under the caller's span instead.
  obs::TraceContext trace{};
};

struct ScoreResult {
  RequestStatus status = RequestStatus::kShedShutdown;
  /// One score per item for kServed (real answer) and kZeroFilled
  /// (all-zero degraded answer); empty for every shed status. Batch
  /// requests get users.size() rows of n_items scores, row-major.
  std::vector<float> scores;
  /// Serving tier index (0 = top) for kServed, else -1.
  int tier = -1;
  /// Model generation that produced (or zero-filled) the answer; 0 for
  /// admission-time sheds that never reached a worker. A request always
  /// resolves entirely on one version — scores, n_items row width and
  /// this tag all come from the same acquire()d snapshot.
  std::uint64_t model_version = 0;
  /// Admission to dequeue (0 for admission-time sheds).
  double queue_ms = 0.0;
  /// Admission to answer (0 for admission-time sheds).
  double total_ms = 0.0;
  /// Fraction of the catalog scored by a live replica (sharded mode):
  /// 1.0 for kServed, in (0, 1) for kServedPartial — the zero-filled
  /// remainder of each row is explicit, degraded capacity is visible to
  /// the client. 0.0 for kZeroFilled and sheds; unsharded gateways
  /// always answer 1.0 or 0.0.
  double coverage = 0.0;
};

struct GatewayConfig {
  /// Worker pool size; 0 = CKAT_SERVE_THREADS, else half the hardware
  /// threads clamped to [2, 8].
  int threads = 0;
  /// Queue capacity; 0 = CKAT_SERVE_QUEUE_DEPTH, else 256.
  std::size_t queue_depth = 0;
  /// Deadline for requests that do not carry their own; 0 disables
  /// deadline enforcement entirely (nothing is ever shed as expired).
  double default_deadline_ms = 50.0;
  /// Per-worker fallback-chain configuration. deadline_ms is ignored —
  /// the gateway propagates each request's remaining budget instead.
  ResilientConfig resilient;
  /// Retry tokens earned per accepted first-try request.
  double retry_ratio = 0.1;
  /// Tokens a fresh client starts with (burst allowance).
  double initial_retry_tokens = 10.0;
  /// Per-worker cache of versioned chains kept alive after a hot swap
  /// (the newest is always kept; older entries let a just-acquired
  /// snapshot reuse its circuit state instead of rebuilding the chain).
  /// 0 = CKAT_SWAP_KEEP_VERSIONS, else 2.
  std::size_t keep_versions = 0;
  /// SLO specs the gateway's burn-rate engine evaluates. Empty uses
  /// SloEngine::default_serving_slos(default_deadline_ms): an
  /// "availability" SLO fed by every resolution (served = good,
  /// zero-filled and non-shutdown sheds = bad) and a "latency_p99" SLO
  /// fed by served-request latency. Custom specs reuse those names to
  /// keep receiving the gateway's events.
  std::vector<obs::SloSpec> slos;
  /// Non-shutdown sheds within one second that fire the "shed_spike"
  /// flight-recorder anomaly (0 disables the detector).
  std::size_t shed_spike_threshold = 16;

  /// Resolves 0-valued fields from CKAT_SERVE_THREADS /
  /// CKAT_SERVE_QUEUE_DEPTH (invalid or unset values fall back to the
  /// built-in defaults above).
  static GatewayConfig from_env();
};

/// Cumulative request accounting. All counters are monotonic; the
/// conservation identity in the file header ties them together.
struct GatewayStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;  // admitted into the queue
  std::uint64_t served = 0;
  /// Sharded mode: answered with 0 < coverage < 1 (always 0 unsharded).
  std::uint64_t served_partial = 0;
  std::uint64_t zero_filled = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_expired = 0;
  std::uint64_t shed_retry_budget = 0;
  std::uint64_t shed_shutdown = 0;
  std::size_t queue_high_water = 0;
  /// Per-model-version resolution counts, ascending by version. Extends
  /// the conservation identity across hot swaps:
  ///   sum(by_version.served) == served,
  ///   sum(by_version.served_partial) == served_partial  and
  ///   sum(by_version.zero_filled) == zero_filled
  /// (version 0 collects requests resolved when no snapshot could be
  /// acquired, e.g. torn reads past the retry bound).
  struct VersionCounts {
    std::uint64_t version = 0;
    std::uint64_t served = 0;
    std::uint64_t served_partial = 0;
    std::uint64_t zero_filled = 0;
  };
  std::vector<VersionCounts> by_version;
  /// Total sheds of every kind.
  [[nodiscard]] std::uint64_t shed_total() const noexcept {
    return shed_queue_full + shed_expired + shed_retry_budget +
           shed_shutdown;
  }
};

/// Client-side pacing between retry attempts (attempt 1 = first retry):
/// base * 2^(attempt-1), capped, with deterministic jitter in
/// [0.5, 1.0) x the backoff drawn from (client_hash, attempt) — the
/// same client retries on the same schedule every run, but distinct
/// clients do not thundering-herd in lockstep.
[[nodiscard]] double retry_backoff_ms(int attempt, std::uint64_t client_hash,
                                      double base_ms = 5.0,
                                      double cap_ms = 200.0) noexcept;

class ServeGateway {
 public:
  /// Hot-swappable gateway: workers serve whatever version `handle`
  /// currently publishes, re-acquiring the snapshot per request. The
  /// handle must already have a published version; later publishes
  /// swap the serving model without pausing workers (in-flight
  /// requests finish on the version they acquired).
  explicit ServeGateway(std::shared_ptr<ModelHandle> handle,
                        GatewayConfig config = GatewayConfig::from_env());

  /// Static-chain convenience: wraps `tiers` (most capable first) in a
  /// single published version. The models must be fitted, thread-safe
  /// for concurrent reads, and outlive the gateway. Each worker wraps
  /// them in its own ResilientRecommender so circuit state needs no
  /// cross-thread locks.
  explicit ServeGateway(std::vector<const eval::Recommender*> tiers,
                        GatewayConfig config = GatewayConfig::from_env());

  /// Sharded gateway: workers fan each request across `router`'s shard
  /// replicas instead of a per-worker chain. Requests may resolve as
  /// kServedPartial with an explicit coverage fraction when shard
  /// slices are down; config_.resilient is unused (each replica carries
  /// its own chain config inside the router).
  explicit ServeGateway(std::shared_ptr<ShardRouter> router,
                        GatewayConfig config = GatewayConfig::from_env());
  ~ServeGateway();

  ServeGateway(const ServeGateway&) = delete;
  ServeGateway& operator=(const ServeGateway&) = delete;

  /// Thread-safe. Always returns a future that resolves with exactly
  /// one status; admission-time sheds resolve immediately.
  std::future<ScoreResult> submit(ScoreRequest request);

  /// Graceful drain: closes admission, finishes in-flight requests,
  /// sheds queued ones (kShedShutdown) and joins the workers.
  /// Idempotent; also called by the destructor.
  void shutdown();

  [[nodiscard]] GatewayStats stats() const;
  /// Fleet view of the *current* model version: merges only the worker
  /// chains serving handle()->version(), so the snapshot is coherent
  /// even while a swap or drain is in progress (counters from an older
  /// generation's chains never mix in; see aggregated_health_by_version
  /// for the full history).
  [[nodiscard]] ResilientRecommender::HealthSnapshot aggregated_health()
      const;
  /// One merged snapshot per model version still cached by any worker,
  /// ascending by version. Each snapshot's model_version tags which
  /// generation its counters belong to.
  [[nodiscard]] std::vector<ResilientRecommender::HealthSnapshot>
  aggregated_health_by_version() const;
  /// Operator override forwarded to every worker's chain (all cached
  /// versions).
  void reset_circuits();

  /// Evaluates the gateway's SLOs now (updates the exported
  /// ckat_slo_* series) and returns the per-spec alert state.
  [[nodiscard]] std::vector<obs::SloAlert> slo_alerts() {
    return slo_->evaluate();
  }
  [[nodiscard]] obs::SloEngine& slo() noexcept { return *slo_; }

  [[nodiscard]] int threads() const noexcept {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.capacity();
  }
  /// Item-vocabulary width of the *current* version (grows across hot
  /// swaps; a ScoreResult's row width is result-side, from the version
  /// that served it). Sharded mode: the router's catalog width.
  [[nodiscard]] std::size_t n_items() const;
  /// Null in sharded mode.
  [[nodiscard]] const std::shared_ptr<ModelHandle>& handle() const noexcept {
    return handle_;
  }
  /// Null in unsharded mode.
  [[nodiscard]] const std::shared_ptr<ShardRouter>& router() const noexcept {
    return router_;
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    ScoreRequest request;
    std::promise<ScoreResult> promise;
    Clock::time_point admitted_at;
    Clock::time_point deadline_at;
    double deadline_ms = 0.0;  // 0 = no deadline
    /// Admission timestamp on the trace clock (0 when untraced); the
    /// worker closes the cross-thread "gateway.queue" span with it.
    std::uint64_t admitted_trace_us = 0;
  };

  /// One worker's chain over one model version. The chain holds raw
  /// tier pointers into the version's payload, so `version` must be
  /// declared first: members destroy in reverse order, tearing down the
  /// chain before its backing model can be released.
  struct VersionedChain {
    std::shared_ptr<const ModelVersion> version;
    std::unique_ptr<ResilientRecommender> chain;
  };

  /// One worker: private per-version chains (single-threaded by design,
  /// newest last) plus the mutex that lets snapshot()/reset_circuits()
  /// read them from other threads without racing the serving loop.
  /// Uncontended in steady state — only the owning worker and
  /// occasional health reads lock.
  struct Worker {
    std::vector<VersionedChain> chains;  // guarded by mutex
    util::OrderedMutex mutex{"gateway.worker"};
    std::thread thread;
  };

  void worker_loop(Worker& worker);
  /// Rolling one-second shed counter feeding the "shed_spike" flight
  /// anomaly; no-op when the recorder is disarmed.
  void note_shed_for_spike(RequestStatus status);
  /// Finds or builds the worker's chain for `snapshot`, pruning the
  /// oldest cached versions past config_.keep_versions. Caller holds
  /// worker.mutex (or, in the constructor, the worker is not yet
  /// visible to any thread).
  ResilientRecommender& chain_for_locked(
      Worker& worker, const std::shared_ptr<const ModelVersion>& snapshot);
  void count_version_resolution(std::uint64_t version, RequestStatus status);
  /// Router-mode request body: fans `job`'s rows across the shard
  /// router and resolves with full/partial/zero status and coverage.
  void serve_sharded(Job&& job, double remaining_ms);
  void resolve_shed(Job&& job, RequestStatus status);
  bool spend_retry_token(const std::string& client_id);
  void credit_retry_token(const std::string& client_id);

  /// Shared constructor body behind the three public forms: exactly one
  /// of handle/router is non-null.
  ServeGateway(std::shared_ptr<ModelHandle> handle,
               std::shared_ptr<ShardRouter> router, GatewayConfig config);

  GatewayConfig config_;
  std::shared_ptr<ModelHandle> handle_;   // null in sharded mode
  std::shared_ptr<ShardRouter> router_;   // null in unsharded mode
  ResilientConfig chain_config_;  // per-worker chain template
  BoundedPriorityQueue<Job> queue_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  util::OrderedMutex shutdown_mutex_{"gateway.shutdown"};
  bool shutdown_done_ = false;  // guarded by shutdown_mutex_

  util::OrderedMutex retry_mutex_{"gateway.retry"};
  std::unordered_map<std::string, double> retry_tokens_;  // guarded by retry_mutex_

  std::unique_ptr<obs::SloEngine> slo_;

  util::OrderedMutex shed_spike_mutex_{"gateway.shed_spike"};
  std::uint64_t shed_window_start_us_ = 0;  // guarded by shed_spike_mutex_
  std::uint64_t shed_window_count_ = 0;     // guarded by shed_spike_mutex_

  mutable util::OrderedMutex version_counts_mutex_{"gateway.version_counts"};
  /// Per-version resolution lanes; extends conservation per version.
  struct VersionLanes {
    std::uint64_t served = 0;
    std::uint64_t served_partial = 0;
    std::uint64_t zero_filled = 0;
  };
  std::map<std::uint64_t, VersionLanes>
      version_counts_;  // guarded by version_counts_mutex_

  // Conservation counters (relaxed atomics: summed, never compared
  // across each other mid-flight).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> served_partial_{0};
  std::atomic<std::uint64_t> zero_filled_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_expired_{0};
  std::atomic<std::uint64_t> shed_retry_budget_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};

  // Metric handles resolved once in the constructor (registry lookups
  // lock; increments are relaxed atomics).
  obs::Counter* requests_served_ = nullptr;
  obs::Counter* requests_served_partial_ = nullptr;
  obs::Counter* requests_zero_filled_ = nullptr;
  obs::Counter* requests_shed_queue_full_ = nullptr;
  obs::Counter* requests_shed_expired_ = nullptr;
  obs::Counter* requests_shed_retry_budget_ = nullptr;
  obs::Counter* requests_shed_shutdown_ = nullptr;
  obs::Histogram* queue_wait_seconds_ = nullptr;
  obs::Histogram* request_seconds_ = nullptr;
  obs::Gauge* queue_high_water_gauge_ = nullptr;
};

}  // namespace ckat::serve
