#include "serve/shard.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "nn/serialize.hpp"
#include "obs/flight.hpp"
#include "obs/metric_names.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ckat::serve {

namespace {

constexpr char kShardMagic[8] = {'C', 'K', 'A', 'T', 'S', 'H', 'D', '1'};

/// Header bytes covered by header_crc (everything before it).
constexpr std::size_t kHeaderCrcOffset =
    offsetof(ShardFileHeader, header_crc);

double elapsed_ms_since(
    std::chrono::steady_clock::time_point start) noexcept {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Stateless hash for ring points and key placement.
std::uint64_t ring_hash(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t state = a * 0x9E3779B97F4A7C15ULL + b;
  (void)util::splitmix64(state);
  return util::splitmix64(state);
}

/// The mmap-backed slice scorer: dot(user embedding, item embedding)
/// over this shard's slice only (n_items() == n_local). Scratch space
/// for the user vector is mutable but thread-confined — the owning
/// replica serializes all calls behind its mutex.
class SliceTier final : public eval::Recommender {
 public:
  SliceTier(std::string label, std::shared_ptr<const MmapShardStore> slice,
            UserVectorFn user_vector, std::size_t users)
      : label_(std::move(label)),
        slice_(std::move(slice)),
        user_vector_(std::move(user_vector)),
        users_(users),
        scratch_(slice_->dim()) {}

  [[nodiscard]] std::string name() const override { return label_; }
  void fit() override {}

  void score_items(std::uint32_t user, std::span<float> out) const override {
    if (out.size() != slice_->n_local()) {
      throw std::invalid_argument("SliceTier: output span != slice size");
    }
    user_vector_(user, std::span<float>(scratch_));
    const std::size_t width = slice_->dim();
    for (std::size_t i = 0; i < out.size(); ++i) {
      const std::span<const float> item = slice_->vector(i);
      float dot = 0.0F;
      for (std::size_t d = 0; d < width; ++d) dot += scratch_[d] * item[d];
      out[i] = dot;
    }
  }

  [[nodiscard]] std::size_t n_users() const override { return users_; }
  [[nodiscard]] std::size_t n_items() const override {
    return slice_->n_local();
  }

 private:
  std::string label_;
  std::shared_ptr<const MmapShardStore> slice_;
  UserVectorFn user_vector_;
  std::size_t users_;
  mutable std::vector<float> scratch_;
};

/// Terminal tier of a replica chain: a deterministic catalog-id prior
/// (earlier ids score higher) that depends on nothing that can fail —
/// no mmap, no user vector — so a replica degrades to popularity-style
/// scores instead of failing when its slice tier misbehaves.
class SlicePriorTier final : public eval::Recommender {
 public:
  SlicePriorTier(std::string label, std::span<const std::uint32_t> ids,
                 std::size_t users)
      : label_(std::move(label)), users_(users) {
    prior_.reserve(ids.size());
    for (const std::uint32_t id : ids) {
      prior_.push_back(1.0F / (1.0F + static_cast<float>(id)));
    }
  }

  [[nodiscard]] std::string name() const override { return label_; }
  void fit() override {}

  void score_items(std::uint32_t /*user*/,
                   std::span<float> out) const override {
    if (out.size() != prior_.size()) {
      throw std::invalid_argument("SlicePriorTier: output span != slice size");
    }
    std::copy(prior_.begin(), prior_.end(), out.begin());
  }

  [[nodiscard]] std::size_t n_users() const override { return users_; }
  [[nodiscard]] std::size_t n_items() const override { return prior_.size(); }

 private:
  std::string label_;
  std::size_t users_;
  std::vector<float> prior_;
};

/// Registry handles shared by every router in the process (metrics are
/// process-global; per-shard series are resolved on the rare trip /
/// recovery events, not here).
struct RouterMetrics {
  obs::Counter* requests_full;
  obs::Counter* requests_partial;
  obs::Counter* requests_zero;
  obs::Counter* hedges;
  obs::Counter* failovers;
  obs::Histogram* coverage;
};

RouterMetrics& router_metrics() {
  static RouterMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::global();
    RouterMetrics m{};
    m.requests_full = &registry.counter(
        obs::metric_names::kShardRequestsTotal, {{"outcome", "full"}});
    m.requests_partial = &registry.counter(
        obs::metric_names::kShardRequestsTotal, {{"outcome", "partial"}});
    m.requests_zero = &registry.counter(
        obs::metric_names::kShardRequestsTotal, {{"outcome", "zero_filled"}});
    m.hedges = &registry.counter(obs::metric_names::kShardHedgesTotal);
    m.failovers = &registry.counter(obs::metric_names::kShardFailoversTotal);
    m.coverage = &registry.histogram(
        obs::metric_names::kShardCoverage, {},
        {0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0});
    return m;
  }();
  return metrics;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardRing

ShardRing::ShardRing(std::size_t n_shards, std::size_t vnodes)
    : n_shards_(n_shards) {
  if (n_shards == 0 || vnodes == 0) {
    throw std::invalid_argument("ShardRing: need >= 1 shard and vnode");
  }
  ring_.reserve(n_shards * vnodes);
  for (std::size_t s = 0; s < n_shards; ++s) {
    for (std::size_t v = 0; v < vnodes; ++v) {
      ring_.emplace_back(ring_hash(0x5A4D1ULL + s, v),
                         static_cast<std::uint32_t>(s));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::uint32_t ShardRing::shard_of(std::uint64_t key) const noexcept {
  const std::uint64_t point = ring_hash(0xD15CULL, key);
  auto it = std::upper_bound(
      ring_.begin(), ring_.end(), point,
      [](std::uint64_t p, const std::pair<std::uint64_t, std::uint32_t>& e) {
        return p < e.first;
      });
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

// ---------------------------------------------------------------------------
// Shard files

void write_shard_file(const std::string& path, std::uint32_t shard_id,
                      std::uint32_t n_shards, std::uint64_t n_items_total,
                      std::uint32_t dim,
                      std::span<const std::uint32_t> item_ids,
                      std::span<const float> vectors) {
  if (vectors.size() != item_ids.size() * dim) {
    throw std::invalid_argument("write_shard_file: vectors != ids * dim");
  }
  ShardFileHeader header{};
  std::memcpy(header.magic, kShardMagic, sizeof(kShardMagic));
  header.shard_id = shard_id;
  header.n_shards = n_shards;
  header.dim = dim;
  header.reserved = 0;
  header.n_items_total = n_items_total;
  header.n_local = item_ids.size();
  std::uint32_t payload_crc =
      nn::crc32(item_ids.data(), item_ids.size_bytes());
  payload_crc = nn::crc32(vectors.data(), vectors.size_bytes(), payload_crc);
  header.payload_crc = payload_crc;
  header.header_crc = nn::crc32(&header, kHeaderCrcOffset);

  const std::string tmp = path + ".tmp";
  FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    throw std::runtime_error("write_shard_file: cannot open " + tmp);
  }
  bool ok = std::fwrite(&header, sizeof(header), 1, file) == 1;
  if (ok && !item_ids.empty()) {
    ok = std::fwrite(item_ids.data(), item_ids.size_bytes(), 1, file) == 1;
    ok = ok && std::fwrite(vectors.data(), vectors.size_bytes(), 1, file) == 1;
  }
  ok = std::fclose(file) == 0 && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_shard_file: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("write_shard_file: cannot rename into " + path);
  }
}

std::shared_ptr<const MmapShardStore> MmapShardStore::open(
    const std::string& path) {
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fire(util::fault_points::kShardOpenFail)) {
    throw std::runtime_error("injected fault: shard.open_fail (" + path + ")");
  }

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("MmapShardStore: cannot open " + path);
  }
  struct StoreGuard {
    int fd;
    void* map = nullptr;
    std::size_t size = 0;
    ~StoreGuard() {
      if (map != nullptr) ::munmap(map, size);
      if (fd >= 0) ::close(fd);
    }
  } guard{fd};

  struct stat st{};
  if (::fstat(fd, &st) != 0 ||
      st.st_size < static_cast<off_t>(sizeof(ShardFileHeader))) {
    throw std::runtime_error("MmapShardStore: truncated header in " + path);
  }
  const auto file_size = static_cast<std::size_t>(st.st_size);
  void* map = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) {
    throw std::runtime_error("MmapShardStore: mmap failed for " + path);
  }
  guard.map = map;
  guard.size = file_size;

  ShardFileHeader header{};
  std::memcpy(&header, map, sizeof(header));
  if (std::memcmp(header.magic, kShardMagic, sizeof(kShardMagic)) != 0) {
    throw std::runtime_error("MmapShardStore: bad magic in " + path);
  }
  if (nn::crc32(&header, kHeaderCrcOffset) != header.header_crc) {
    throw std::runtime_error("MmapShardStore: header CRC mismatch in " + path);
  }
  if (header.dim == 0) {
    throw std::runtime_error("MmapShardStore: zero dim in " + path);
  }
  const std::size_t n_local = header.n_local;
  const std::size_t expected =
      sizeof(ShardFileHeader) + n_local * sizeof(std::uint32_t) +
      n_local * static_cast<std::size_t>(header.dim) * sizeof(float);
  if (file_size != expected) {
    throw std::runtime_error("MmapShardStore: size mismatch in " + path);
  }
  const auto* payload =
      static_cast<const unsigned char*>(map) + sizeof(ShardFileHeader);
  const std::uint32_t payload_crc =
      nn::crc32(payload, file_size - sizeof(ShardFileHeader));
  const bool injected_corrupt =
      injector.enabled() &&
      injector.should_fire(util::fault_points::kShardCorrupt);
  if (payload_crc != header.payload_crc || injected_corrupt) {
    throw std::runtime_error("MmapShardStore: payload CRC mismatch in " +
                             path);
  }
  const auto* ids = reinterpret_cast<const std::uint32_t*>(payload);
  for (std::size_t i = 0; i < n_local; ++i) {
    if (ids[i] >= header.n_items_total ||
        (i > 0 && ids[i] <= ids[i - 1])) {
      throw std::runtime_error(
          "MmapShardStore: item ids not ascending/in range in " + path);
    }
  }

  auto store = std::shared_ptr<MmapShardStore>(new MmapShardStore());
  store->map_ = map;
  store->map_size_ = file_size;
  store->fd_ = fd;
  store->ids_ = ids;
  store->vectors_ = reinterpret_cast<const float*>(
      payload + n_local * sizeof(std::uint32_t));
  store->shard_id_ = header.shard_id;
  store->n_shards_ = header.n_shards;
  store->dim_ = header.dim;
  store->n_items_total_ = header.n_items_total;
  store->n_local_ = n_local;
  guard.map = nullptr;  // ownership transferred
  guard.fd = -1;
  return store;
}

MmapShardStore::~MmapShardStore() {
  if (map_ != nullptr) ::munmap(map_, map_size_);
  if (fd_ >= 0) ::close(fd_);
}

// ---------------------------------------------------------------------------
// ShardRouterConfig

ShardRouterConfig ShardRouterConfig::from_env() {
  ShardRouterConfig config;
  config.n_shards =
      static_cast<int>(util::env_int("CKAT_SHARD_COUNT", 4, 1, 4096));
  config.replicas =
      static_cast<int>(util::env_int("CKAT_SHARD_REPLICAS", 2, 1, 16));
  config.probe_interval_ms =
      util::env_double("CKAT_SHARD_PROBE_MS", 25.0, 0.1, 3.6e6);
  config.hedge_min_ms =
      util::env_double("CKAT_SHARD_HEDGE_MIN_MS", 1.0, 0.01, 1e4);
  return config;
}

// ---------------------------------------------------------------------------
// ShardRouter

ShardRouter::ShardRouter(std::string dir, std::size_t n_users,
                         std::size_t n_items, std::size_t dim,
                         UserVectorFn user_vector, ShardRouterConfig config)
    : dir_(std::move(dir)),
      n_users_(n_users),
      n_items_(n_items),
      dim_(dim),
      user_vector_(std::move(user_vector)),
      config_(config) {
  if (n_users_ == 0 || n_items_ == 0 || dim_ == 0 || !user_vector_) {
    throw std::invalid_argument("ShardRouter: empty population or catalog");
  }
  if (config_.n_shards <= 0) config_.n_shards = 4;
  if (config_.replicas <= 0) config_.replicas = 2;
  if (config_.probe_interval_ms <= 0.0) config_.probe_interval_ms = 25.0;
  if (config_.hedge_min_ms <= 0.0) config_.hedge_min_ms = 1.0;
  replicas_per_shard_ = static_cast<std::size_t>(config_.replicas);

  auto& registry = obs::MetricsRegistry::global();
  bool any_open = false;
  shards_.reserve(static_cast<std::size_t>(config_.n_shards));
  for (std::size_t s = 0; s < static_cast<std::size_t>(config_.n_shards);
       ++s) {
    auto shard = std::make_unique<Shard>();
    for (std::size_t r = 0; r < replicas_per_shard_; ++r) {
      auto replica = std::make_unique<Replica>();
      replica->path = replica_path(dir_, s, r);
      replica->label = "shard" + std::to_string(s) + "-r" + std::to_string(r);
      replica->shard_index = s;
      replica->replica_index = r;
      replica->latency_hist = &registry.histogram(
          obs::metric_names::kShardReplicaLatencySeconds,
          {{"shard", std::to_string(s)}, {"replica", std::to_string(r)}});
      {
        std::lock_guard<util::OrderedMutex> lock(replica->mutex);
        try {
          open_replica_locked(*replica);
          replica->healthy.store(true, std::memory_order_release);
          any_open = true;
          if (shard->slice_ids.empty()) {
            const auto ids = replica->mapped_store->item_ids();
            shard->slice_ids.assign(ids.begin(), ids.end());
          }
        } catch (const std::exception& e) {
          CKAT_LOG_WARN("[shard] replica %s starts dead: %s",
                        replica->label.c_str(), e.what());
        }
      }
      shard->replica_slots.push_back(std::move(replica));
    }
    registry
        .gauge(obs::metric_names::kShardReplicasHealthy,
               {{"shard", std::to_string(s)}})
        .set(static_cast<double>(healthy_count(*shard)));
    shards_.push_back(std::move(shard));
  }
  if (!any_open) {
    throw std::runtime_error(
        "ShardRouter: no replica of any shard could open its shard file "
        "under " +
        dir_);
  }
  probe_thread_ = std::thread(&ShardRouter::probe_loop, this);
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<util::OrderedMutex> lock(probe_mutex_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void ShardRouter::write_catalog(
    const std::string& dir, std::size_t n_shards, std::size_t replicas,
    std::size_t n_items, std::size_t dim,
    const std::function<void(std::uint32_t, std::span<float>)>& item_vector) {
  if (n_shards == 0 || replicas == 0 || n_items == 0 || dim == 0) {
    throw std::invalid_argument("write_catalog: empty topology or catalog");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw std::runtime_error("write_catalog: cannot create " + dir + ": " +
                             ec.message());
  }
  const ShardRing ring(n_shards);
  std::vector<std::vector<std::uint32_t>> slices(n_shards);
  for (std::uint32_t id = 0; id < n_items; ++id) {
    slices[ring.shard_of(id)].push_back(id);  // ascending by construction
  }
  std::vector<float> vectors;
  for (std::size_t s = 0; s < n_shards; ++s) {
    const std::vector<std::uint32_t>& ids = slices[s];
    vectors.resize(ids.size() * dim);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      item_vector(ids[i], std::span<float>(vectors.data() + i * dim, dim));
    }
    for (std::size_t r = 0; r < replicas; ++r) {
      write_shard_file(replica_path(dir, s, r), static_cast<std::uint32_t>(s),
                       static_cast<std::uint32_t>(n_shards), n_items,
                       static_cast<std::uint32_t>(dim), ids, vectors);
    }
  }
}

std::string ShardRouter::replica_path(const std::string& dir,
                                      std::size_t shard,
                                      std::size_t replica) {
  return dir + "/shard_" + std::to_string(shard) + "_r" +
         std::to_string(replica) + ".bin";
}

void ShardRouter::open_replica_locked(Replica& replica) const {
  auto opened = MmapShardStore::open(replica.path);
  if (opened->dim() != dim_ || opened->n_items_total() != n_items_ ||
      opened->n_shards() != static_cast<std::uint32_t>(config_.n_shards) ||
      opened->shard_id() != static_cast<std::uint32_t>(replica.shard_index)) {
    throw std::runtime_error("MmapShardStore: topology mismatch in " +
                             replica.path);
  }
  replica.mapped_store = std::move(opened);
  replica.slice_tier = std::make_unique<SliceTier>(
      replica.label, replica.mapped_store, user_vector_, n_users_);
  replica.prior_tier = std::make_unique<SlicePriorTier>(
      replica.label + "-prior", replica.mapped_store->item_ids(), n_users_);
  auto chain = std::make_unique<ResilientRecommender>(
      std::vector<const eval::Recommender*>{replica.slice_tier.get(),
                                            replica.prior_tier.get()},
      config_.replica_chain);
  chain->set_model_version(config_.model_version);
  replica.slice_chain = std::move(chain);
  replica.fail_streak = 0;
}

void ShardRouter::close_replica_locked(Replica& replica) const {
  replica.slice_chain.reset();
  replica.slice_tier.reset();
  replica.prior_tier.reset();
  replica.mapped_store.reset();
}

void ShardRouter::record_replica_failure_locked(Replica& replica,
                                                const char* cause) {
  obs::MetricsRegistry::global()
      .counter(obs::metric_names::kShardReplicaFailuresTotal,
               {{"shard", std::to_string(replica.shard_index)},
                {"replica", std::to_string(replica.replica_index)}})
      .inc();
  replica.fail_streak += 1;
  if (replica.fail_streak < config_.replica_failure_threshold ||
      !replica.healthy.load(std::memory_order_acquire)) {
    return;
  }
  close_replica_locked(replica);
  replica.healthy.store(false, std::memory_order_release);
  replica_trips_.fetch_add(1, std::memory_order_relaxed);
  auto& registry = obs::MetricsRegistry::global();
  registry
      .counter(obs::metric_names::kShardReplicaTripsTotal,
               {{"shard", std::to_string(replica.shard_index)},
                {"replica", std::to_string(replica.replica_index)}})
      .inc();
  registry
      .gauge(obs::metric_names::kShardReplicasHealthy,
             {{"shard", std::to_string(replica.shard_index)}})
      .set(static_cast<double>(
          healthy_count(*shards_[replica.shard_index])));
  obs::trace_event("shard.replica_tripped",
                   {{"replica", replica.label}, {"cause", cause}});
  obs::flight_anomaly("shard_replica_down",
                      {{"replica", replica.label}, {"cause", cause}});
  CKAT_LOG_WARN("[shard] replica %s tripped (%s)", replica.label.c_str(),
                cause);
}

double ShardRouter::hedge_delay_ms(const Replica& replica) const {
  // p95-derived: once the replica's latency histogram has enough
  // samples, hedge after its observed p95 instead of the static floor.
  const obs::Histogram* hist = replica.latency_hist;
  if (hist != nullptr && hist->count() >= 32) {
    const double p95_ms = hist->quantile(0.95) * 1000.0;
    if (p95_ms > config_.hedge_min_ms) return p95_ms;
  }
  return config_.hedge_min_ms;
}

bool ShardRouter::score_shard(Shard& shard, std::uint32_t user,
                              std::span<float> slice, double remaining_ms,
                              ShardOutcome& outcome) {
  const std::size_t n_replicas = shard.replica_slots.size();
  const std::size_t first =
      shard.next_primary.fetch_add(1, std::memory_order_relaxed) % n_replicas;
  const auto start = std::chrono::steady_clock::now();
  int attempted = 0;
  bool last_failure_was_latency = false;

  for (std::size_t a = 0; a < n_replicas; ++a) {
    Replica& replica = *shard.replica_slots[(first + a) % n_replicas];
    if (!replica.healthy.load(std::memory_order_acquire)) continue;

    const double spent = elapsed_ms_since(start);
    const double left = remaining_ms > 0.0 ? remaining_ms - spent : 0.0;
    if (remaining_ms > 0.0 && left <= 0.0) break;

    // Classify the sibling attempt: latency-driven = hedge,
    // error/dead-primary-driven = failover.
    if (attempted > 0) {
      if (last_failure_was_latency) {
        outcome.hedges += 1;
        hedges_.fetch_add(1, std::memory_order_relaxed);
        router_metrics().hedges->inc();
      } else {
        outcome.failovers += 1;
        failovers_.fetch_add(1, std::memory_order_relaxed);
        router_metrics().failovers->inc();
      }
    } else if (a > 0) {
      outcome.failovers += 1;
      failovers_.fetch_add(1, std::memory_order_relaxed);
      router_metrics().failovers->inc();
    }

    // A non-final replica only gets the hedge allowance, so a slow
    // primary leaves the sibling budget to answer; the last candidate
    // gets everything left (0 = no deadline).
    const bool has_sibling = a + 1 < n_replicas;
    double allowance = left;
    if (has_sibling) {
      const double hedge = hedge_delay_ms(replica);
      allowance = remaining_ms > 0.0 ? std::min(hedge, left) : hedge;
    }

    ResilientRecommender::ScoreOutcome result;
    {
      std::lock_guard<util::OrderedMutex> lock(replica.mutex);
      if (!replica.slice_chain) continue;  // raced a kill/trip
      result = replica.slice_chain->score_with_budget(user, slice, allowance);
      if (result.kind == ResilientRecommender::ScoreOutcome::Kind::kServed) {
        replica.fail_streak = 0;
      } else {
        record_replica_failure_locked(
            replica,
            result.kind ==
                    ResilientRecommender::ScoreOutcome::Kind::kBudgetExhausted
                ? "budget_exhausted"
                : "zero_filled");
      }
    }
    replica.latency_hist->observe(result.elapsed_ms / 1000.0);
    if (result.kind == ResilientRecommender::ScoreOutcome::Kind::kServed) {
      return true;
    }
    last_failure_was_latency =
        result.kind ==
        ResilientRecommender::ScoreOutcome::Kind::kBudgetExhausted;
    attempted += 1;
  }
  return false;
}

ShardOutcome ShardRouter::score(std::uint32_t user, std::span<float> out,
                                double budget_ms,
                                const obs::TraceContext& trace) {
  if (out.size() != n_items_) {
    throw std::invalid_argument("ShardRouter::score: out span != n_items");
  }
  const auto start = std::chrono::steady_clock::now();
  std::fill(out.begin(), out.end(), 0.0F);
  obs::TraceSpan span("shard.fanout", trace,
                      {{"user", std::to_string(user)}});

  std::size_t max_local = 0;
  for (const auto& shard : shards_) {
    max_local = std::max(max_local, shard->slice_ids.size());
  }
  std::vector<float> slice_buf(max_local);

  ShardOutcome outcome;
  std::size_t covered = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    const std::span<float> slice(slice_buf.data(), shard.slice_ids.size());
    const double spent = elapsed_ms_since(start);
    const double left = budget_ms > 0.0 ? budget_ms - spent : 0.0;
    bool ok = false;
    if (!shard.slice_ids.empty() && (budget_ms <= 0.0 || left > 0.0)) {
      ok = score_shard(shard, user, slice, left, outcome);
    }
    if (ok) {
      for (std::size_t i = 0; i < shard.slice_ids.size(); ++i) {
        out[shard.slice_ids[i]] = slice[i];
      }
      covered += shard.slice_ids.size();
      shard.ok.fetch_add(1, std::memory_order_relaxed);
    } else {
      outcome.shards_failed += 1;
      shard.failed.fetch_add(1, std::memory_order_relaxed);
      obs::trace_event("shard.slice_failed", trace,
                       {{"shard", std::to_string(s)}});
    }
  }

  outcome.coverage =
      static_cast<double>(covered) / static_cast<double>(n_items_);
  if (covered == n_items_) {
    outcome.kind = ShardOutcome::Kind::kFull;
    served_full_.fetch_add(1, std::memory_order_relaxed);
    router_metrics().requests_full->inc();
  } else if (covered > 0) {
    outcome.kind = ShardOutcome::Kind::kPartial;
    served_partial_.fetch_add(1, std::memory_order_relaxed);
    router_metrics().requests_partial->inc();
  } else {
    outcome.kind = ShardOutcome::Kind::kZeroFilled;
    zero_filled_.fetch_add(1, std::memory_order_relaxed);
    router_metrics().requests_zero->inc();
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
  router_metrics().coverage->observe(outcome.coverage);
  outcome.elapsed_ms = elapsed_ms_since(start);
  span.add_attr("coverage", std::to_string(outcome.coverage));
  span.add_attr("shards_failed", std::to_string(outcome.shards_failed));
  return outcome;
}

void ShardRouter::kill_replica(std::size_t shard, std::size_t replica) {
  Replica& rep = *shards_.at(shard)->replica_slots.at(replica);
  std::lock_guard<util::OrderedMutex> lock(rep.mutex);
  if (!rep.healthy.load(std::memory_order_acquire)) return;
  // Force an immediate trip regardless of the failure threshold.
  rep.fail_streak = config_.replica_failure_threshold - 1;
  record_replica_failure_locked(rep, "killed");
}

bool ShardRouter::replica_healthy(std::size_t shard,
                                  std::size_t replica) const {
  return shards_.at(shard)
      ->replica_slots.at(replica)
      ->healthy.load(std::memory_order_acquire);
}

void ShardRouter::probe_now() { probe_sweep(); }

void ShardRouter::probe_sweep() {
  auto& registry = obs::MetricsRegistry::global();
  for (const auto& shard : shards_) {
    for (const auto& slot : shard->replica_slots) {
      Replica& replica = *slot;
      if (replica.healthy.load(std::memory_order_acquire)) continue;
      std::lock_guard<util::OrderedMutex> lock(replica.mutex);
      try {
        if (!replica.slice_chain) open_replica_locked(replica);
        // Canary request: the replica only comes back when it can
        // actually answer within the probe budget (a still-slow or
        // still-corrupt replica stays down).
        std::vector<float> canary(replica.mapped_store->n_local());
        const auto result = replica.slice_chain->score_with_budget(
            0, std::span<float>(canary), config_.probe_budget_ms);
        if (result.kind !=
            ResilientRecommender::ScoreOutcome::Kind::kServed) {
          close_replica_locked(replica);
          continue;
        }
        replica.fail_streak = 0;
        replica.healthy.store(true, std::memory_order_release);
        replica_recoveries_.fetch_add(1, std::memory_order_relaxed);
        registry
            .counter(obs::metric_names::kShardReplicaRecoveriesTotal,
                     {{"shard", std::to_string(replica.shard_index)},
                      {"replica", std::to_string(replica.replica_index)}})
            .inc();
        registry
            .gauge(obs::metric_names::kShardReplicasHealthy,
                   {{"shard", std::to_string(replica.shard_index)}})
            .set(static_cast<double>(healthy_count(*shard)));
        obs::trace_event("shard.replica_recovered",
                         {{"replica", replica.label}});
        CKAT_LOG_INFO("[shard] replica %s recovered",
                      replica.label.c_str());
      } catch (const std::exception&) {
        close_replica_locked(replica);  // stays down until the next probe
      }
    }
  }
}

void ShardRouter::probe_loop() {
  std::unique_lock<util::OrderedMutex> lock(probe_mutex_);
  while (!probe_stop_) {
    probe_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::milli>(config_.probe_interval_ms),
        [this] { return probe_stop_; });
    if (probe_stop_) break;
    lock.unlock();
    probe_sweep();
    lock.lock();
  }
}

std::size_t ShardRouter::healthy_count(const Shard& shard) {
  std::size_t live = 0;
  for (const auto& slot : shard.replica_slots) {
    if (slot->healthy.load(std::memory_order_acquire)) ++live;
  }
  return live;
}

ShardRouterStats ShardRouter::stats() const {
  ShardRouterStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.served_full = served_full_.load(std::memory_order_relaxed);
  stats.served_partial = served_partial_.load(std::memory_order_relaxed);
  stats.zero_filled = zero_filled_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.failovers = failovers_.load(std::memory_order_relaxed);
  stats.replica_trips = replica_trips_.load(std::memory_order_relaxed);
  stats.replica_recoveries =
      replica_recoveries_.load(std::memory_order_relaxed);
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardRouterStats::PerShard per;
    per.n_local = shard->slice_ids.size();
    per.healthy_replicas = healthy_count(*shard);
    per.ok = shard->ok.load(std::memory_order_relaxed);
    per.failed = shard->failed.load(std::memory_order_relaxed);
    stats.shards.push_back(per);
  }
  return stats;
}

}  // namespace ckat::serve
