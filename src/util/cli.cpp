#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/env.hpp"

namespace ckat::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[++i];
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stoll(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

int epoch_scale_percent() {
  return static_cast<int>(env_int("CKAT_EPOCH_SCALE_PCT", 100, 1, 100));
}

int scaled_epochs(int epochs) {
  const long long scaled =
      static_cast<long long>(epochs) * epoch_scale_percent() / 100;
  return static_cast<int>(std::max(1LL, scaled));
}

}  // namespace ckat::util
