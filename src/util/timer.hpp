// Wall-clock timing helpers for training loops and benchmarks.
#pragma once

#include <chrono>
#include <string>

namespace ckat::util {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Formats a duration like "1m 23.4s" for progress logs.
std::string format_duration(double seconds);

}  // namespace ckat::util
