// Tiny CSV writer/reader used to emit figure series (Fig. 3-5 data) and to
// round-trip generated datasets for inspection.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ckat::util {

/// Streams rows to a CSV file; fields containing commas/quotes/newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  void write_row(const std::vector<std::string>& fields);
  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  static std::string escape(const std::string& field);

 private:
  std::ofstream out_;
};

/// Loads an entire CSV file into rows of fields. Handles quoted fields,
/// including quoted fields with embedded newlines (quote state carries
/// across physical lines, so everything CsvWriter::escape emits
/// round-trips). Throws std::runtime_error on an unterminated quote.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

/// Parses one CSV line into fields (exposed for testing). Unlike
/// read_csv this treats the line as a complete row.
std::vector<std::string> parse_csv_line(const std::string& line);

}  // namespace ckat::util
