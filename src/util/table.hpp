// ASCII table rendering for the paper-style result tables printed by the
// bench harnesses (Tables I-V) and examples.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ckat::util {

/// Column-aligned ASCII table with a caption, printed to any ostream-like
/// sink via str(). Cells are strings; numeric helpers format in place.
class AsciiTable {
 public:
  explicit AsciiTable(std::string caption = "") : caption_(std::move(caption)) {}

  /// Sets the header row. Must be called before add_row for alignment.
  void set_header(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Inserts a horizontal rule before the next added row.
  void add_rule();

  /// Formats a double with the paper's 4-decimal metric convention.
  static std::string metric(double v);
  static std::string number(double v, int decimals = 2);
  static std::string integer(long long v);

  /// Renders the full table, caption first.
  [[nodiscard]] std::string str() const;

  /// Convenience: render to stdout.
  void print() const;

 private:
  std::string caption_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices preceded by a rule
};

}  // namespace ckat::util
