// Minimal leveled logger used across the library. Log output goes to
// stderr so that bench/table harnesses can print machine-readable tables
// on stdout.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

namespace ckat::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Structured-output switch: when on, each log line is one JSON object
/// ({"ts": "...", "level": "...", "msg": "..."}) so stderr can be
/// ingested alongside the CKAT_TRACE_FILE JSONL stream.
bool log_json() noexcept;
void set_log_json(bool enabled) noexcept;

/// Reads CKAT_LOG_LEVEL (debug|info|warn|error, case-insensitive; an
/// unrecognized value keeps the current level and warns once) and
/// CKAT_LOG_JSON (1/true/on enables structured lines) at startup.
void init_logging_from_env();

namespace detail {
void vlog(LogLevel level, std::string_view fmt_message);
std::string format_message(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
/// Builds the line vlog writes (minus trailing newline); split out so
/// tests can validate both the plain and JSON forms.
std::string render_line(LogLevel level, std::string_view message,
                        bool as_json);
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::vlog(level, fmt);
  } else {
    detail::vlog(level, detail::format_message(fmt, args...));
  }
}

#define CKAT_LOG_DEBUG(...) ::ckat::util::log(::ckat::util::LogLevel::kDebug, __VA_ARGS__)
#define CKAT_LOG_INFO(...) ::ckat::util::log(::ckat::util::LogLevel::kInfo, __VA_ARGS__)
#define CKAT_LOG_WARN(...) ::ckat::util::log(::ckat::util::LogLevel::kWarn, __VA_ARGS__)
#define CKAT_LOG_ERROR(...) ::ckat::util::log(::ckat::util::LogLevel::kError, __VA_ARGS__)

}  // namespace ckat::util
