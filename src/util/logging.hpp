// Minimal leveled logger used across the library. Log output goes to
// stderr so that bench/table harnesses can print machine-readable tables
// on stdout.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <string_view>

namespace ckat::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Reads CKAT_LOG_LEVEL (debug|info|warn|error) once at startup.
void init_logging_from_env();

namespace detail {
void vlog(LogLevel level, std::string_view fmt_message);
std::string format_message(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const char* fmt, Args... args) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  if constexpr (sizeof...(Args) == 0) {
    detail::vlog(level, fmt);
  } else {
    detail::vlog(level, detail::format_message(fmt, args...));
  }
}

#define CKAT_LOG_DEBUG(...) ::ckat::util::log(::ckat::util::LogLevel::kDebug, __VA_ARGS__)
#define CKAT_LOG_INFO(...) ::ckat::util::log(::ckat::util::LogLevel::kInfo, __VA_ARGS__)
#define CKAT_LOG_WARN(...) ::ckat::util::log(::ckat::util::LogLevel::kWarn, __VA_ARGS__)
#define CKAT_LOG_ERROR(...) ::ckat::util::log(::ckat::util::LogLevel::kError, __VA_ARGS__)

}  // namespace ckat::util
