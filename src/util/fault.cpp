#include "util/fault.hpp"

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace ckat::util {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = points_.insert_or_assign(point, PointState{});
  it->second.spec = spec;
  it->second.rng_state = spec.seed;
  // NOLINTNEXTLINE(ckat-relaxed-atomic): write is under mutex_; relaxed load in enabled() only gates a racy fast path
  if (inserted) armed_.fetch_add(1, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (points_.erase(point) > 0) {
    // NOLINTNEXTLINE(ckat-relaxed-atomic): write is under mutex_; pairs with the racy pre-check in enabled()
    armed_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  // NOLINTNEXTLINE(ckat-relaxed-atomic): write is under mutex_; pairs with the racy pre-check in enabled()
  armed_.store(0, std::memory_order_relaxed);
  points_.clear();
}

bool FaultInjector::advance_schedule(PointState& state) {
  const FaultSpec& spec = state.spec;
  const std::uint64_t hit = state.hits++;

  if (hit < spec.after) return false;
  const std::uint64_t limit =
      spec.limit > 0 ? spec.limit
                     : (spec.every == 0 ? 1 : ~std::uint64_t{0});
  if (state.fires >= limit) return false;
  const std::uint64_t eligible = hit - spec.after;
  if (spec.every > 0 && eligible % spec.every != 0) return false;
  if (spec.probability < 1.0) {
    const double draw =
        static_cast<double>(splitmix64(state.rng_state) >> 11) * 0x1.0p-53;
    if (draw >= spec.probability) return false;
  }
  ++state.fires;
  return true;
}

bool FaultInjector::fire_common(const std::string& point, double* delay_ms) {
  if (!enabled()) return false;
  bool fired = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = points_.find(point);
    if (it == points_.end()) return false;
    fired = advance_schedule(it->second);
    if (fired && delay_ms != nullptr) *delay_ms = it->second.spec.delay_ms;
  }
  if (fired) {
    // Every fired fault is telemetry: a per-point counter plus a trace
    // event under whatever span is open, so a later fallback activation
    // or rollback in the same trace attributes to its injected cause.
    // Emitted outside the lock: the metrics registry and trace sink
    // have their own synchronization.
    obs::MetricsRegistry::global()
        .counter(obs::metric_names::kFaultFiredTotal, {{"point", point}})
        .inc();
    obs::trace_event("fault.fired", {{"point", point}});
  }
  return fired;
}

bool FaultInjector::should_fire(const std::string& point) {
  return fire_common(point, nullptr);
}

double FaultInjector::fire_delay_ms(const std::string& point) {
  double delay = 0.0;
  return fire_common(point, &delay) ? delay : 0.0;
}

std::uint64_t FaultInjector::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.fires;
}

}  // namespace ckat::util
