// A small reusable worker pool for deterministic data-parallel loops.
//
// The training engine (core/trainer.hpp) and the sparse optimizer
// (nn/optim.hpp) need "run f(worker) on W workers and wait" semantics
// with three properties OpenMP does not give us here:
//
//   - std::thread workers, so ThreadSanitizer instruments every access
//     (libgomp's barrier is opaque to TSan and drowns CI in false
//     positives);
//   - the calling thread participates as worker 0, so a pool of size 1
//     never context-switches and the serial path is the parallel path;
//   - exceptions thrown by any worker are captured and rethrown on the
//     caller, first-worker-wins, after every worker has parked.
//
// Determinism contract: the pool only provides *execution*; callers
// must make the result independent of scheduling by writing to
// disjoint, slot-indexed storage and reducing in slot order (the same
// contract BatchRanker proves for ranking, DESIGN.md section 16).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "util/lockorder.hpp"

namespace ckat::util {

class WorkerPool {
 public:
  /// Creates a pool with `threads` workers total (the caller counts as
  /// worker 0, so `threads - 1` std::threads are spawned). threads < 1
  /// is clamped to 1.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return threads_; }

  /// Runs fn(worker) for worker in [0, size()) -- worker 0 on the
  /// calling thread -- and returns once all invocations finish. If any
  /// invocation throws, the lowest-indexed worker's exception is
  /// rethrown after the barrier. Not reentrant: fn must not call run()
  /// on the same pool.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker);

  std::size_t threads_;
  std::vector<std::thread> workers_;

  OrderedMutex mutex_{"util.worker_pool"};
  std::condition_variable_any cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  // bumped per run() to wake workers
  std::size_t remaining_ = 0;     // workers still inside the current job
  bool shutdown_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace ckat::util
