#include "util/parallel.hpp"

#include <mutex>

namespace ckat::util {

WorkerPool::WorkerPool(std::size_t threads)
    : threads_(threads < 1 ? 1 : threads), errors_(threads_) {
  workers_.reserve(threads_ - 1);
  for (std::size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<OrderedMutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<OrderedMutex> lock(mutex_);
    job_ = &fn;
    ++generation_;
    remaining_ = threads_ - 1;
    for (auto& e : errors_) e = nullptr;
  }
  cv_.notify_all();

  try {
    fn(0);
  } catch (...) {
    errors_[0] = std::current_exception();
  }

  std::unique_lock<OrderedMutex> lock(mutex_);
  cv_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

void WorkerPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<OrderedMutex> lock(mutex_);
      cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    try {
      (*job)(worker);
    } catch (...) {
      errors_[worker] = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<OrderedMutex> lock(mutex_);
      last = --remaining_ == 0;
    }
    if (last) cv_.notify_all();
  }
}

}  // namespace ckat::util
