// Central registry of every CKAT_* runtime environment variable.
//
// This header is the single place the process reads the environment:
// ckat-lint (tools/ckat_lint) rejects `getenv` anywhere else in the tree
// and rejects any "CKAT_*" string literal that is not registered below,
// and it cross-checks this list against the README's runtime-
// configuration table in both directions — a variable cannot ship
// undocumented, and the README cannot document a variable that no code
// reads.
//
// Header-only on purpose: ckat_obs sits below ckat_util in the link
// graph (util links obs PUBLIC), yet obs/metrics.cpp and obs/trace.cpp
// also read CKAT_* variables. Keeping the registry free of out-of-line
// symbols lets every layer include it without a dependency cycle.
//
// To add a variable: add an X(...) row here, document it in the README
// table ("Runtime configuration"), and read it via env_raw(). Build-time
// CMake options (CKAT_VALIDATE, CKAT_SANITIZE, ...) are not environment
// variables and do not belong in this list.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>
#include <string_view>

#include "util/contract.hpp"

namespace ckat::util {

// name, one-line summary (kept in sync with the README table by lint's
// presence check; the prose there is the authoritative documentation).
#define CKAT_ENV_REGISTRY(X)                                            \
  X(CKAT_LOG_LEVEL, "log threshold: debug|info|warn|error")             \
  X(CKAT_LOG_JSON, "1/true/on renders each stderr log line as JSON")    \
  X(CKAT_TRACE_FILE, "path that enables JSONL scoped tracing")          \
  X(CKAT_OBS, "0/off disables metrics and tracing")                     \
  X(CKAT_EPOCH_SCALE_PCT, "1-100 scales every model's training epochs") \
  X(CKAT_SERVE_THREADS, "serving-gateway worker pool size")             \
  X(CKAT_SERVE_QUEUE_DEPTH, "bound of the gateway admission queue")     \
  X(CKAT_EVAL_THREADS, "batched ranking engine worker threads")         \
  X(CKAT_EVAL_BLOCK, "users per score_batch block in the ranker")       \
  X(CKAT_REFRESH_EPOCHS, "training epochs per online refresh cycle")    \
  X(CKAT_REFRESH_GUARDRAIL_EPS, "max recall regression before rollback") \
  X(CKAT_SWAP_KEEP_VERSIONS, "model versions a gateway worker caches")  \
  X(CKAT_SWAP_MAX_RETRIES, "torn-read re-acquire attempts before error") \
  X(CKAT_TRACE_MAX_MB, "trace-file size cap in MB; rotates once to .1")  \
  X(CKAT_TRACE_SAMPLE, "tail sampling: keep 1-in-N non-flagged traces")  \
  X(CKAT_FLIGHT_DIR, "directory that arms the anomaly flight recorder")  \
  X(CKAT_FLIGHT_SECONDS, "flight-recorder dump window in seconds")       \
  X(CKAT_FLIGHT_EVENTS, "flight-recorder ring capacity in records")      \
  X(CKAT_SLO_AVAIL_TARGET, "availability SLO target fraction")           \
  X(CKAT_SLO_P99_MS, "latency SLO p99 budget in milliseconds")           \
  X(CKAT_SLO_FAST_S, "SLO fast burn-rate window in seconds")             \
  X(CKAT_SLO_SLOW_S, "SLO slow burn-rate window in seconds")              \
  X(CKAT_SHARD_COUNT, "shard-router shard count")                         \
  X(CKAT_SHARD_REPLICAS, "replicas per shard in the shard router")        \
  X(CKAT_SHARD_PROBE_MS, "dead-replica recovery probe interval in ms")    \
  X(CKAT_SHARD_HEDGE_MIN_MS, "floor of the p95-derived hedge delay in ms")  \
  X(CKAT_TRAIN_THREADS, "minibatch training engine worker threads")          \
  X(CKAT_TRAIN_BATCH, "BPR pairs sampled per minibatched training step")

/// One registry row, exposed for tooling (ckat-lint, run reports).
struct EnvVarInfo {
  const char* name;
  const char* summary;
};

inline constexpr EnvVarInfo kEnvRegistry[] = {
#define X(name, summary) {#name, summary},
    CKAT_ENV_REGISTRY(X)
#undef X
};

[[nodiscard]] inline bool env_registered(std::string_view name) noexcept {
  for (const EnvVarInfo& var : kEnvRegistry) {
    if (name == var.name) return true;
  }
  return false;
}

/// The project's only environment read. Returns nullptr when unset.
/// Validate builds reject unregistered names so a new variable cannot
/// bypass the registry at runtime even if it slips past lint.
[[nodiscard]] inline const char* env_raw(const char* name) {
  CKAT_ASSERT(env_registered(name),
              std::string("unregistered environment variable: ") + name);
  return std::getenv(name);  // NOLINT(ckat-env-registry): the registry's own lookup
}

namespace detail {

/// Warns at most once per variable name, so a misconfigured value set
/// for a whole run does not spam every read. std::fprintf, not
/// CKAT_LOG: this header sits below the logging/obs layers in the link
/// graph (see the file comment) and must not pull them in.
inline void env_warn_once(const char* name, const char* raw,
                          const char* problem) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  std::lock_guard<std::mutex> lock(mutex);
  if (!warned.emplace(name).second) return;
  std::fprintf(stderr, "[env] %s='%s' %s; using a safe value\n", name, raw,
               problem);
}

}  // namespace detail

/// Checked integer read: unset/empty returns `fallback` untouched
/// (callers use a sentinel like 0 for "not configured"); a value that
/// parses but lies outside [lo, hi] is clamped with a once-per-variable
/// warning; garbage (non-numeric, trailing junk, overflow) warns once
/// and returns `fallback`.
[[nodiscard]] inline long long env_int(const char* name, long long fallback,
                                       long long lo, long long hi) {
  const char* raw = env_raw(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') {
    detail::env_warn_once(name, raw, "is not an integer");
    return fallback;
  }
  if (errno == ERANGE) {
    detail::env_warn_once(name, raw, "overflows");
    return value < 0 ? lo : hi;
  }
  if (value < lo || value > hi) {
    detail::env_warn_once(name, raw, "is out of range");
    return value < lo ? lo : hi;
  }
  return value;
}

/// Checked floating-point read with the same contract as env_int():
/// fallback on unset/garbage, clamp into [lo, hi] with a warn-once on
/// out-of-range. Non-finite values (inf/nan parse fine via strtod)
/// count as garbage — no configuration knob should inject a NaN.
[[nodiscard]] inline double env_double(const char* name, double fallback,
                                       double lo, double hi) {
  const char* raw = env_raw(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw || *end != '\0' || !std::isfinite(value)) {
    detail::env_warn_once(name, raw, "is not a finite number");
    return fallback;
  }
  if (value < lo || value > hi) {
    detail::env_warn_once(name, raw, "is out of range");
    return value < lo ? lo : hi;
  }
  return value;
}

}  // namespace ckat::util
