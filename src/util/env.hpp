// Central registry of every CKAT_* runtime environment variable.
//
// This header is the single place the process reads the environment:
// ckat-lint (tools/ckat_lint) rejects `getenv` anywhere else in the tree
// and rejects any "CKAT_*" string literal that is not registered below,
// and it cross-checks this list against the README's runtime-
// configuration table in both directions — a variable cannot ship
// undocumented, and the README cannot document a variable that no code
// reads.
//
// Header-only on purpose: ckat_obs sits below ckat_util in the link
// graph (util links obs PUBLIC), yet obs/metrics.cpp and obs/trace.cpp
// also read CKAT_* variables. Keeping the registry free of out-of-line
// symbols lets every layer include it without a dependency cycle.
//
// To add a variable: add an X(...) row here, document it in the README
// table ("Runtime configuration"), and read it via env_raw(). Build-time
// CMake options (CKAT_VALIDATE, CKAT_SANITIZE, ...) are not environment
// variables and do not belong in this list.
#pragma once

#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/contract.hpp"

namespace ckat::util {

// name, one-line summary (kept in sync with the README table by lint's
// presence check; the prose there is the authoritative documentation).
#define CKAT_ENV_REGISTRY(X)                                            \
  X(CKAT_LOG_LEVEL, "log threshold: debug|info|warn|error")             \
  X(CKAT_LOG_JSON, "1/true/on renders each stderr log line as JSON")    \
  X(CKAT_TRACE_FILE, "path that enables JSONL scoped tracing")          \
  X(CKAT_OBS, "0/off disables metrics and tracing")                     \
  X(CKAT_EPOCH_SCALE_PCT, "1-100 scales every model's training epochs") \
  X(CKAT_SERVE_THREADS, "serving-gateway worker pool size")             \
  X(CKAT_SERVE_QUEUE_DEPTH, "bound of the gateway admission queue")     \
  X(CKAT_EVAL_THREADS, "batched ranking engine worker threads")         \
  X(CKAT_EVAL_BLOCK, "users per score_batch block in the ranker")       \
  X(CKAT_REFRESH_EPOCHS, "training epochs per online refresh cycle")    \
  X(CKAT_REFRESH_GUARDRAIL_EPS, "max recall regression before rollback") \
  X(CKAT_SWAP_KEEP_VERSIONS, "model versions a gateway worker caches")  \
  X(CKAT_SWAP_MAX_RETRIES, "torn-read re-acquire attempts before error") \
  X(CKAT_TRACE_MAX_MB, "trace-file size cap in MB; rotates once to .1")  \
  X(CKAT_TRACE_SAMPLE, "tail sampling: keep 1-in-N non-flagged traces")  \
  X(CKAT_FLIGHT_DIR, "directory that arms the anomaly flight recorder")  \
  X(CKAT_FLIGHT_SECONDS, "flight-recorder dump window in seconds")       \
  X(CKAT_FLIGHT_EVENTS, "flight-recorder ring capacity in records")      \
  X(CKAT_SLO_AVAIL_TARGET, "availability SLO target fraction")           \
  X(CKAT_SLO_P99_MS, "latency SLO p99 budget in milliseconds")           \
  X(CKAT_SLO_FAST_S, "SLO fast burn-rate window in seconds")             \
  X(CKAT_SLO_SLOW_S, "SLO slow burn-rate window in seconds")

/// One registry row, exposed for tooling (ckat-lint, run reports).
struct EnvVarInfo {
  const char* name;
  const char* summary;
};

inline constexpr EnvVarInfo kEnvRegistry[] = {
#define X(name, summary) {#name, summary},
    CKAT_ENV_REGISTRY(X)
#undef X
};

[[nodiscard]] inline bool env_registered(std::string_view name) noexcept {
  for (const EnvVarInfo& var : kEnvRegistry) {
    if (name == var.name) return true;
  }
  return false;
}

/// The project's only environment read. Returns nullptr when unset.
/// Validate builds reject unregistered names so a new variable cannot
/// bypass the registry at runtime even if it slips past lint.
[[nodiscard]] inline const char* env_raw(const char* name) {
  CKAT_ASSERT(env_registered(name),
              std::string("unregistered environment variable: ") + name);
  return std::getenv(name);  // NOLINT(ckat-env-registry): the registry's own lookup
}

}  // namespace ckat::util
