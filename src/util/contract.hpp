// Debug runtime contracts, compiled in under -DCKAT_VALIDATE=ON.
//
// CKAT_ASSERT checks a local precondition; CKAT_CHECK_INVARIANT checks a
// cross-cutting structural invariant (CSR layout, entity alignment,
// gateway conservation). Both throw ContractViolation with file:line and
// the failed expression, so validate-build tests can EXPECT_THROW on
// deliberately corrupted inputs instead of relying on death tests.
//
// In the default build both macros compile to a no-op that does not
// evaluate its arguments: guard any non-trivial validation work (building
// issue lists, scanning tensors) in `#if defined(CKAT_VALIDATE)` blocks
// so release binaries carry zero cost. See DESIGN.md section 10 for the
// measured overhead of the validate build.
#pragma once

#include <stdexcept>
#include <string>

namespace ckat::util {

/// Thrown by CKAT_ASSERT / CKAT_CHECK_INVARIANT in validate builds.
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// True when the build carries runtime contracts (-DCKAT_VALIDATE=ON).
[[nodiscard]] constexpr bool validate_enabled() noexcept {
#if defined(CKAT_VALIDATE)
  return true;
#else
  return false;
#endif
}

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const std::string& detail,
                                       const char* file, int line) {
  std::string message = std::string(file) + ":" + std::to_string(line) + ": " +
                        kind + " failed: " + expr;
  if (!detail.empty()) message += " -- " + detail;
  throw ContractViolation(message);
}

}  // namespace ckat::util

#if defined(CKAT_VALIDATE)
#define CKAT_ASSERT(cond, detail)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ckat::util::contract_fail("CKAT_ASSERT", #cond, (detail),        \
                                  __FILE__, __LINE__);                   \
    }                                                                    \
  } while (0)
#define CKAT_CHECK_INVARIANT(cond, detail)                               \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::ckat::util::contract_fail("CKAT_CHECK_INVARIANT", #cond,         \
                                  (detail), __FILE__, __LINE__);         \
    }                                                                    \
  } while (0)
#else
// sizeof keeps the condition type-checked (so contracts cannot bit-rot in
// the default build) without evaluating it. The detail expression is
// dropped entirely; keep side effects out of both arguments.
#define CKAT_ASSERT(cond, detail) ((void)sizeof(!(cond)))
#define CKAT_CHECK_INVARIANT(cond, detail) ((void)sizeof(!(cond)))
#endif
