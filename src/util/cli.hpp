// Minimal command-line flag parser for example/bench executables.
// Supports --name=value, --name value, and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ckat::util {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Non-flag positional arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Reads an integer scale factor from env var CKAT_EPOCH_SCALE_PCT
/// (percent, default 100). Benches use it to scale training epochs for
/// quick smoke runs (e.g. 10 = one tenth of the epochs).
int epoch_scale_percent();

/// Applies epoch_scale_percent() to an epoch count, flooring at 1.
int scaled_epochs(int epochs);

}  // namespace ckat::util
