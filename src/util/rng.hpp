// Deterministic random number generation for all stochastic components.
//
// Every experiment in this repository flows its randomness from a single
// 64-bit seed through Rng instances, so datasets, initializations and
// sampling are bit-reproducible across runs. The generator is
// xoshiro256** seeded via SplitMix64 (the initialization recommended by
// the xoshiro authors).
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <cmath>
#include <stdexcept>
#include <span>
#include <vector>

namespace ckat::util {

/// SplitMix64 step; used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator with convenience distributions.
///
/// Not thread-safe; create one Rng per thread (see `fork()`), or guard
/// externally. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0FFEEULL) noexcept { reseed(seed); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    gauss_cached_ = false;
  }

  /// Raw generator state for checkpointing; restoring it with
  /// set_state() resumes the exact same sequence. (The Gaussian pair
  /// cache is dropped on restore, which only matters to callers mixing
  /// gaussian() draws across a checkpoint boundary.)
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = state[i];
    gauss_cached_ = false;
  }

  /// Derive an independent child generator (for per-thread or per-module
  /// streams) without disturbing this generator's sequence.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) noexcept {
    std::uint64_t sm = state_[0] ^ (0xA5A5A5A5A5A5A5A5ULL + stream_id);
    return Rng(splitmix64(sm));
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float uniform_float() noexcept { return static_cast<float>(uniform()); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n) noexcept {
    // Bounded rejection-free multiply-shift (Lemire); bias is negligible
    // for the n (< 2^32) used in this project.
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(operator()()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_index(static_cast<std::size_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Marsaglia polar method (cached pair).
  double gaussian() noexcept {
    if (gauss_cached_) {
      gauss_cached_ = false;
      return gauss_cache_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    gauss_cache_ = v * mul;
    gauss_cached_ = true;
    return u * mul;
  }

  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Sample an index according to unnormalized non-negative weights.
  /// Throws std::invalid_argument if the total weight is not positive.
  std::size_t weighted_index(std::span<const double> weights);

  /// Exponential deviate with the given rate.
  double exponential(double rate) noexcept {
    return -std::log1p(-uniform()) / rate;
  }

  /// Zipf-like rank sample over [0, n) with exponent s >= 0 (s = 0 is
  /// uniform). Uses an inverse-CDF over precomputed weights for small n;
  /// callers needing many draws should use ZipfSampler below.
  std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (Floyd's algorithm order is
  /// not needed here; simple selection-tracking is fine for k << n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double gauss_cache_ = 0.0;
  bool gauss_cached_ = false;
};

/// Walker alias method for O(1) sampling from a fixed discrete
/// distribution; used by the trace generator for item popularity.
class AliasSampler {
 public:
  AliasSampler() = default;
  explicit AliasSampler(std::span<const double> weights) { build(weights); }

  void build(std::span<const double> weights);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }
  [[nodiscard]] bool empty() const noexcept { return prob_.empty(); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

/// Precomputed Zipf(s) sampler over ranks [0, n).
class ZipfSampler {
 public:
  ZipfSampler() = default;
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const { return alias_.sample(rng); }
  [[nodiscard]] std::size_t size() const noexcept { return alias_.size(); }

 private:
  AliasSampler alias_;
};

}  // namespace ckat::util
