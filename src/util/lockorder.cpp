#include "util/lockorder.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace ckat::util::lockorder {

namespace {

struct State {
  std::mutex mu;
  Handler handler;
  // Edge (from -> to) keyed by lock name, with the acquiring thread's
  // held-name stack (outermost first, `to` appended) at the time the
  // edge was first observed.
  std::map<std::pair<std::string, std::string>, std::vector<std::string>>
      edge_stacks;
  std::map<std::string, std::set<std::string>> adjacency;
};

State& state() {
  static State* s = new State();  // leaked: outlives static destructors
  return *s;
}

struct Held {
  const void* mutex;
  const char* name;
};

std::vector<Held>& held_stack() {
  thread_local std::vector<Held> stack;
  return stack;
}

void default_handler(const Violation& v) {
  std::fprintf(stderr, "%s", v.message.c_str());
  std::fflush(stderr);
  std::abort();
}

std::string join(const std::vector<std::string>& names, const char* sep) {
  std::string out;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += sep;
    out += names[i];
  }
  return out;
}

std::string render(const Violation& v) {
  std::string msg = "ckat lockorder: ";
  msg += v.kind == "reacquire"
             ? "same-lock reacquire (self-deadlock on a non-recursive mutex)\n"
             : "potential deadlock (lock-order inversion)\n";
  msg += "  cycle: " + join(v.cycle, " -> ") + "\n";
  msg += "  acquiring thread held (outermost first): " +
         join(v.acquiring_stack, ", ") + "\n";
  if (!v.prior_stack.empty()) {
    msg += "  conflicting edge first seen while holding: " +
           join(v.prior_stack, ", ") + "\n";
  }
  return msg;
}

std::vector<std::string> held_names_plus(const char* acquiring) {
  std::vector<std::string> names;
  for (const Held& h : held_stack()) names.emplace_back(h.name);
  names.emplace_back(acquiring);
  return names;
}

/// Finds a path `from -> ... -> to` in the edge graph; returns the
/// node sequence including both endpoints, or empty if unreachable.
/// Caller holds state().mu.
std::vector<std::string> find_path(const State& s, const std::string& from,
                                   const std::string& to) {
  std::map<std::string, std::string> parent;
  std::vector<std::string> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const std::string node = frontier.back();
    frontier.pop_back();
    auto it = s.adjacency.find(node);
    if (it == s.adjacency.end()) continue;
    for (const std::string& next : it->second) {
      if (parent.count(next) != 0) continue;
      parent[next] = node;
      if (next == to) {
        std::vector<std::string> path{to};
        while (path.back() != from) path.push_back(parent[path.back()]);
        return {path.rbegin(), path.rend()};
      }
      frontier.push_back(next);
    }
  }
  return {};
}

void fail(Violation v) {
  v.message = render(v);
  Handler handler;
  {
    std::lock_guard<std::mutex> lock(state().mu);
    handler = state().handler;
  }
  if (handler) {
    handler(v);  // may throw (test hook); propagates out of lock()
  } else {
    default_handler(v);
  }
}

}  // namespace

Handler set_failure_handler(Handler handler) {
  std::lock_guard<std::mutex> lock(state().mu);
  Handler previous = std::move(state().handler);
  state().handler = std::move(handler);
  return previous;
}

std::vector<std::pair<std::string, std::string>> edges() {
  std::vector<std::pair<std::string, std::string>> out;
  std::lock_guard<std::mutex> lock(state().mu);
  for (const auto& [edge, stack] : state().edge_stacks) out.push_back(edge);
  return out;
}

void reset() {
  std::lock_guard<std::mutex> lock(state().mu);
  state().edge_stacks.clear();
  state().adjacency.clear();
}

std::size_t held_depth() { return held_stack().size(); }

namespace detail {

void note_acquire(const void* mutex, const char* name) {
  const std::vector<Held>& held = held_stack();
  for (const Held& h : held) {
    if (h.mutex == mutex || std::string(h.name) == name) {
      // Same instance: guaranteed self-deadlock. Same name, different
      // instance: two locks of the same rank held at once -- the
      // name-keyed graph cannot order them, so the discipline (one
      // replica / one worker at a time) is broken either way.
      Violation v;
      v.kind = "reacquire";
      v.cycle = {h.name, name};
      v.acquiring_stack = held_names_plus(name);
      fail(std::move(v));
      return;
    }
  }
  if (held.empty()) return;

  Violation pending;
  bool violated = false;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    for (const Held& h : held) {
      const std::pair<std::string, std::string> edge{h.name, name};
      if (s.edge_stacks.count(edge) != 0) continue;
      // Would h.name -> name close a cycle? Look for the reverse path.
      std::vector<std::string> path = find_path(s, name, h.name);
      if (!path.empty()) {
        pending.kind = "inversion";
        // path = name -> ... -> h.name, so prepending h.name yields
        // the closed loop h.name -> name -> ... -> h.name.
        pending.cycle = {h.name};
        pending.cycle.insert(pending.cycle.end(), path.begin(), path.end());
        // The conflicting edge is the first hop of the reverse path.
        auto it = s.edge_stacks.find({path[0], path[1]});
        if (it != s.edge_stacks.end()) pending.prior_stack = it->second;
        pending.acquiring_stack = held_names_plus(name);
        violated = true;
        break;
      }
      s.edge_stacks.emplace(edge, held_names_plus(name));
      s.adjacency[h.name].insert(name);
    }
  }
  if (violated) fail(std::move(pending));
}

void note_acquired(const void* mutex, const char* name) {
  held_stack().push_back(Held{mutex, name});
}

void note_release(const void* mutex) {
  std::vector<Held>& held = held_stack();
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (it->mutex == mutex) {
      held.erase(std::next(it).base());
      return;
    }
  }
}

}  // namespace detail

}  // namespace ckat::util::lockorder
