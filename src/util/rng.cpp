#include "util/rng.hpp"

#include <algorithm>
#include <unordered_set>

namespace ckat::util {

std::size_t Rng::weighted_index(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (!(total > 0.0)) {
    throw std::invalid_argument("weighted_index: total weight must be > 0");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack lands on the last bin
}

std::size_t Rng::zipf(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("zipf: n must be > 0");
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  return weighted_index(w);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) {
    throw std::invalid_argument(
        "sample_without_replacement: k must not exceed n");
  }
  if (k * 3 > n) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    shuffle(idx);
    idx.resize(k);
    return idx;
  }
  // Sparse case: rejection sampling with a seen-set.
  std::unordered_set<std::size_t> seen;
  std::vector<std::size_t> out;
  out.reserve(k);
  while (out.size() < k) {
    std::size_t candidate = uniform_index(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

void AliasSampler::build(std::span<const double> weights) {
  const std::size_t n = weights.size();
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);
  if (n == 0) return;

  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("AliasSampler: negative weight");
    total += w;
  }
  if (!(total > 0.0)) {
    throw std::invalid_argument("AliasSampler: total weight must be > 0");
  }

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasSampler::sample(Rng& rng) const {
  if (prob_.empty()) throw std::logic_error("AliasSampler: empty sampler");
  const std::size_t column = rng.uniform_index(prob_.size());
  return rng.uniform() < prob_[column] ? column : alias_[column];
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  alias_.build(w);
}

}  // namespace ckat::util
