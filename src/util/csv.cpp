#include "util/csv.hpp"

#include <stdexcept>

namespace ckat::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
}

CsvWriter::~CsvWriter() = default;

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out += "\"";
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

namespace {

/// Consumes one physical line, appending completed fields to `fields`
/// and leaving the trailing (possibly still-open) field in `current`.
/// `in_quotes` carries quote state across lines: a quoted field that
/// contains an embedded newline legally spans several getline() lines.
void parse_csv_chunk(const std::string& line,
                     std::vector<std::string>& fields, std::string& current,
                     bool& in_quotes) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char ch = line[i];
    if (in_quotes) {
      if (ch == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(ch);
      }
    } else if (ch == '"') {
      in_quotes = true;
    } else if (ch == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (ch != '\r') {
      current.push_back(ch);
    }
  }
}

}  // namespace

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  parse_csv_chunk(line, fields, current, in_quotes);
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv: cannot open " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  while (std::getline(in, line)) {
    if (line.empty() && !in_quotes) continue;
    if (in_quotes) current.push_back('\n');  // the newline getline() ate
    parse_csv_chunk(line, fields, current, in_quotes);
    if (!in_quotes) {
      fields.push_back(std::move(current));
      current.clear();
      rows.push_back(std::move(fields));
      fields.clear();
    }
  }
  if (in_quotes) {
    throw std::runtime_error("read_csv: unterminated quoted field in " +
                             path);
  }
  return rows;
}

}  // namespace ckat::util
