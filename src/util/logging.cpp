#include "util/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <ctime>

namespace ckat::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void init_logging_from_env() {
  const char* env = std::getenv("CKAT_LOG_LEVEL");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
}

namespace detail {

void vlog(LogLevel level, std::string_view message) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  std::fprintf(stderr, "[%s %s] %.*s\n", stamp, level_name(level),
               static_cast<int>(message.size()), message.data());
}

std::string format_message(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail
}  // namespace ckat::util
