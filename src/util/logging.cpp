#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "obs/json.hpp"
#include "util/env.hpp"

namespace ckat::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_json{false};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

std::string lowercase(const char* raw) {
  std::string out(raw);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&tt, &tm_buf);
  char stamp[32];
  std::strftime(stamp, sizeof(stamp), "%H:%M:%S", &tm_buf);
  return stamp;
}
}  // namespace

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

bool log_json() noexcept { return g_json.load(std::memory_order_relaxed); }

void set_log_json(bool enabled) noexcept {
  g_json.store(enabled, std::memory_order_relaxed);
}

void init_logging_from_env() {
  if (const char* env = env_raw("CKAT_LOG_LEVEL")) {
    const std::string level = lowercase(env);
    if (level == "debug") set_log_level(LogLevel::kDebug);
    else if (level == "info") set_log_level(LogLevel::kInfo);
    else if (level == "warn" || level == "warning") set_log_level(LogLevel::kWarn);
    else if (level == "error") set_log_level(LogLevel::kError);
    else {
      // Warn once per distinct bad value, not per init call: benches
      // call init_logging_from_env() from several helpers.
      static std::string warned_value;
      if (warned_value != level) {
        warned_value = level;
        CKAT_LOG_WARN(
            "unrecognized CKAT_LOG_LEVEL '%s' (expected debug|info|warn|"
            "error); keeping level '%s'",
            env, level_name(log_level()));
      }
    }
  }
  if (const char* env = env_raw("CKAT_LOG_JSON")) {
    const std::string flag = lowercase(env);
    set_log_json(flag == "1" || flag == "true" || flag == "on");
  }
}

namespace detail {

std::string render_line(LogLevel level, std::string_view message,
                        bool as_json) {
  if (!as_json) {
    std::string out = "[" + timestamp() + " " + level_name(level) + "] ";
    out.append(message);
    return out;
  }
  std::string trimmed_level = level_name(level);
  while (!trimmed_level.empty() && trimmed_level.back() == ' ') {
    trimmed_level.pop_back();
  }
  std::string out = "{\"ts\":\"" + obs::json_escape(timestamp()) +
                    "\",\"level\":\"" + trimmed_level + "\",\"msg\":\"" +
                    obs::json_escape(message) + "\"}";
  return out;
}

void vlog(LogLevel level, std::string_view message) {
  const std::string line = render_line(level, message, log_json());
  std::fprintf(stderr, "%s\n", line.c_str());
}

std::string format_message(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail
}  // namespace ckat::util
