// Deterministic fault injection for testing failure paths.
//
// Production code registers *named injection points* at the places where
// real deployments fail (checkpoint writes, corrupted reads, diverging
// losses, slow scoring). By default every point is disarmed and the
// per-call cost is one relaxed atomic load, so shipping the hooks in
// release builds is free. Tests and the fault-tolerance bench arm points
// with a seedable, fully deterministic schedule (fire after K hits,
// every Nth hit, with probability p) so failure scenarios are
// bit-reproducible across runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace ckat::util {

/// Canonical injection-point names wired into the library. Arbitrary
/// names are allowed; these constants just keep call sites and tests in
/// agreement.
namespace fault_points {
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kCheckpointReadBitflip = "checkpoint.read_bitflip";
inline constexpr const char* kNanLoss = "ckat.nan_loss";
inline constexpr const char* kScoreTimeout = "serve.score_timeout";
inline constexpr const char* kScoreThrow = "serve.score_throw";
}  // namespace fault_points

/// When and how often an armed injection point fires.
struct FaultSpec {
  /// First eligible hit index (0-based): hits [0, after) never fire.
  std::uint64_t after = 0;
  /// 0 = fire on exactly one eligible hit; N = every Nth eligible hit.
  std::uint64_t every = 0;
  /// Cap on total fires (default: single shot when every == 0,
  /// unlimited otherwise).
  std::uint64_t limit = 0;
  /// Probability an otherwise-eligible hit actually fires; draws come
  /// from a dedicated generator seeded with `seed`, so schedules stay
  /// deterministic.
  double probability = 1.0;
  std::uint64_t seed = 0x5EEDFA117ULL;
};

class FaultInjector {
 public:
  /// Process-wide injector used by all built-in injection points.
  static FaultInjector& instance();

  /// Arms (or re-arms, resetting counters) a named point.
  void arm(const std::string& point, FaultSpec spec = {});
  void disarm(const std::string& point);
  /// Disarms everything and clears all counters.
  void reset();

  /// Called by production code at an injection point. Counts a hit and
  /// returns true when the armed schedule says this hit fails. Disarmed
  /// points always return false.
  bool should_fire(const std::string& point);

  /// True when at least one point is armed (fast pre-check so disarmed
  /// builds pay one atomic load, not a map lookup).
  [[nodiscard]] bool enabled() const noexcept {
    return armed_.load(std::memory_order_relaxed) > 0;
  }

  /// Diagnostics: how often a point was reached / actually fired.
  [[nodiscard]] std::uint64_t hits(const std::string& point) const;
  [[nodiscard]] std::uint64_t fires(const std::string& point) const;

 private:
  struct PointState {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng_state = 0;  // splitmix64 stream for `probability`
  };

  std::atomic<int> armed_{0};
  std::unordered_map<std::string, PointState> points_;
};

/// RAII guard that disarms the given point (or every point when
/// constructed with no name) when the scope exits, so a failing test
/// cannot leak an armed fault into later tests.
class FaultScope {
 public:
  FaultScope() = default;
  FaultScope(const std::string& point, FaultSpec spec) : point_(point) {
    FaultInjector::instance().arm(point, spec);
  }
  ~FaultScope() {
    if (point_.empty()) {
      FaultInjector::instance().reset();
    } else {
      FaultInjector::instance().disarm(point_);
    }
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string point_;
};

}  // namespace ckat::util
