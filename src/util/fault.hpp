// Deterministic fault injection for testing failure paths.
//
// Production code registers *named injection points* at the places where
// real deployments fail (checkpoint writes, corrupted reads, diverging
// losses, slow scoring). By default every point is disarmed and the
// per-call cost is one relaxed atomic load, so shipping the hooks in
// release builds is free. Tests and the fault-tolerance bench arm points
// with a seedable, fully deterministic schedule (fire after K hits,
// every Nth hit, with probability p) so failure scenarios are
// bit-reproducible across runs.
//
// Thread-safe: injection points sit on production scoring paths that the
// serve gateway drives from a worker pool, so the schedule state behind
// the `armed_` pre-check is guarded by a mutex. Disarmed builds still
// pay exactly one relaxed atomic load per call; the lock is only taken
// while at least one point is armed (tests, benches, chaos runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace ckat::util {

/// Canonical injection-point names wired into the library. Arbitrary
/// names are allowed; these constants just keep call sites and tests in
/// agreement.
namespace fault_points {
inline constexpr const char* kCheckpointWrite = "checkpoint.write";
inline constexpr const char* kCheckpointReadBitflip = "checkpoint.read_bitflip";
inline constexpr const char* kNanLoss = "ckat.nan_loss";
inline constexpr const char* kScoreTimeout = "serve.score_timeout";
inline constexpr const char* kScoreThrow = "serve.score_throw";
/// Real latency injection: the serving tier walk sleeps `delay_ms`
/// before scoring, so deadline and shed paths see true elapsed time
/// (unlike kScoreTimeout, which only simulates a stall post-hoc).
inline constexpr const char* kScoreDelay = "serve.score_delay";
/// Memory-corruption injection: a scored output value is replaced with
/// NaN after the tier answers, exercising the non-finite output guard.
inline constexpr const char* kScoreBitflip = "serve.score_bitflip";
/// Hot-swap publication failure: ModelHandle::publish throws before
/// mutating anything, so a refresh cycle must roll back to the serving
/// model (serve/swap.hpp).
inline constexpr const char* kSwapPublishFail = "swap.publish_fail";
/// Simulated torn version read: ModelHandle::acquire sees a snapshot
/// whose seal mismatches and must retry (serve/swap.hpp).
inline constexpr const char* kSwapTornRead = "swap.torn_read";
/// Corrupted ingestion window: CollaborativeKg::apply_delta rejects the
/// delta as if producer-side validation failed (graph/delta.cpp).
inline constexpr const char* kIngestBadDelta = "ingest.bad_delta";
/// Shard-file open failure: MmapShardStore::open throws before mapping,
/// as if the file vanished or the mmap syscall failed — the replica (not
/// the process) goes down (serve/shard.cpp).
inline constexpr const char* kShardOpenFail = "shard.open_fail";
/// Shard-file corruption: MmapShardStore::open treats the payload CRC
/// as mismatched even on an intact file, exercising the
/// corrupt-replica-stays-down path without touching disk.
inline constexpr const char* kShardCorrupt = "shard.corrupt";
}  // namespace fault_points

/// When and how often an armed injection point fires.
struct FaultSpec {
  /// First eligible hit index (0-based): hits [0, after) never fire.
  std::uint64_t after = 0;
  /// 0 = fire on exactly one eligible hit; N = every Nth eligible hit.
  std::uint64_t every = 0;
  /// Cap on total fires (default: single shot when every == 0,
  /// unlimited otherwise).
  std::uint64_t limit = 0;
  /// Probability an otherwise-eligible hit actually fires; draws come
  /// from a dedicated generator seeded with `seed`, so schedules stay
  /// deterministic.
  double probability = 1.0;
  std::uint64_t seed = 0x5EEDFA117ULL;
  /// For delay points (fire_delay_ms): how long a firing hit sleeps.
  /// Ignored by should_fire().
  double delay_ms = 0.0;
};

class FaultInjector {
 public:
  /// Process-wide injector used by all built-in injection points.
  static FaultInjector& instance();

  /// Arms (or re-arms, resetting counters) a named point.
  void arm(const std::string& point, FaultSpec spec = {});
  void disarm(const std::string& point);
  /// Disarms everything and clears all counters.
  void reset();

  /// Called by production code at an injection point. Counts a hit and
  /// returns true when the armed schedule says this hit fails. Disarmed
  /// points always return false.
  bool should_fire(const std::string& point);

  /// Latency-injection variant: same schedule semantics as
  /// should_fire(), but a firing hit returns the spec's `delay_ms`
  /// (how long the call site should actually sleep) instead of true.
  /// Non-firing hits and disarmed points return 0.
  double fire_delay_ms(const std::string& point);

  /// True when at least one point is armed (fast pre-check so disarmed
  /// builds pay one atomic load, not a map lookup).
  [[nodiscard]] bool enabled() const noexcept {
    // NOLINTNEXTLINE(ckat-relaxed-atomic): racy pre-check only; a stale 0 just skips injection for one call, callers that fire re-check under mutex_
    return armed_.load(std::memory_order_relaxed) > 0;
  }

  /// Diagnostics: how often a point was reached / actually fired.
  [[nodiscard]] std::uint64_t hits(const std::string& point) const;
  [[nodiscard]] std::uint64_t fires(const std::string& point) const;

 private:
  struct PointState {
    FaultSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng_state = 0;  // splitmix64 stream for `probability`
  };

  /// Advances the schedule of an armed point by one hit; returns whether
  /// that hit fires. Caller holds mutex_.
  static bool advance_schedule(PointState& state);
  /// should_fire/fire_delay_ms shared body; emits telemetry outside the
  /// lock. Returns true (and the delay) when the hit fires.
  bool fire_common(const std::string& point, double* delay_ms);

  /// Count of armed points, readable without mutex_ so disarmed call
  /// sites stay lock-free; all transitions happen under mutex_.
  std::atomic<int> armed_{0};
  mutable std::mutex mutex_;
  std::unordered_map<std::string, PointState> points_;  // guarded by mutex_
};

/// RAII guard that disarms the given point (or every point when
/// constructed with no name) when the scope exits, so a failing test
/// cannot leak an armed fault into later tests.
class FaultScope {
 public:
  FaultScope() = default;
  FaultScope(const std::string& point, FaultSpec spec) : point_(point) {
    FaultInjector::instance().arm(point, spec);
  }
  ~FaultScope() {
    if (point_.empty()) {
      FaultInjector::instance().reset();
    } else {
      FaultInjector::instance().disarm(point_);
    }
  }
  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  std::string point_;
};

}  // namespace ckat::util
