#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace ckat::util {

void AsciiTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void AsciiTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void AsciiTable::add_rule() { rules_.push_back(rows_.size()); }

std::string AsciiTable::metric(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string AsciiTable::number(double v, int decimals) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string AsciiTable::integer(long long v) {
  // Groups thousands with commas, matching the paper's table style.
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%lld", v < 0 ? -v : v);
  std::string raw = digits;
  std::string out;
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[i]);
  }
  return v < 0 ? "-" + out : out;
}

std::string AsciiTable::str() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return caption_.empty() ? "" : caption_ + "\n";

  std::vector<std::size_t> width(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return line + "\n";
  };
  auto render_rule = [&]() {
    std::string line = "+";
    for (std::size_t c = 0; c < columns; ++c) {
      line += std::string(width[c] + 2, '-') + "+";
    }
    return line + "\n";
  };

  std::string out;
  if (!caption_.empty()) out += caption_ + "\n";
  out += render_rule();
  if (!header_.empty()) {
    out += render_row(header_);
    out += render_rule();
  }
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end() && r > 0) {
      out += render_rule();
    }
    out += render_row(rows_[r]);
  }
  out += render_rule();
  return out;
}

void AsciiTable::print() const { std::fputs(str().c_str(), stdout); }

}  // namespace ckat::util
