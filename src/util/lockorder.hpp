// Runtime lock-order validation (the dynamic counterpart of the
// ckat-lock-order static pass, DESIGN.md section 15).
//
// OrderedMutex is a named drop-in replacement for std::mutex. In
// normal builds it is a zero-overhead forwarder. Under -DCKAT_VALIDATE
// every blocking acquisition is checked against a process-global
// lock-order graph *before* the thread can block:
//
//   - each thread keeps a stack of the OrderedMutexes it holds;
//   - acquiring B while holding A records the edge A -> B (keyed by
//     lock *name*, so every "ShardRouter replica" mutex is one node)
//     together with the acquiring thread's held-lock stack;
//   - an acquisition that would close a cycle in the edge graph (a
//     potential deadlock, even if this particular schedule would have
//     survived) or re-enter a lock the thread already holds reports a
//     violation with BOTH acquisition stacks -- the current thread's
//     and the stack recorded when the conflicting edge was first seen
//     -- and calls the failure handler (default: stderr + abort()).
//
// Names are static strings ("gateway.worker", "shard.replica", ...);
// the adoption map lives in DESIGN.md section 15. Locks with the same
// name are ranked together: code must never hold two of them at once
// unless it can order them globally some other way, which is exactly
// the discipline the serving tier follows (one replica, one worker at
// a time).
#ifndef CKAT_UTIL_LOCKORDER_HPP_
#define CKAT_UTIL_LOCKORDER_HPP_

#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace ckat::util {

namespace lockorder {

/// A detected ordering violation, handed to the failure handler.
struct Violation {
  /// "inversion" or "reacquire".
  std::string kind;
  /// Lock names around the cycle, first == last (e.g. {"a","b","a"}).
  std::vector<std::string> cycle;
  /// The acquiring thread's held-lock names, outermost first, with the
  /// lock being acquired appended.
  std::vector<std::string> acquiring_stack;
  /// The held-lock stack recorded when the conflicting edge was first
  /// observed (empty for a same-lock reacquire).
  std::vector<std::string> prior_stack;
  /// Fully rendered human-readable report.
  std::string message;
};

using Handler = std::function<void(const Violation&)>;

/// Replaces the failure handler (default: print + abort) and returns
/// the previous one. Tests install a throwing handler: note_acquire
/// runs *before* the thread blocks on the underlying mutex, so a
/// handler that throws leaves the mutex unlocked and the held stack
/// intact.
Handler set_failure_handler(Handler handler);

/// Snapshot of the recorded edge set as (from, to) name pairs.
std::vector<std::pair<std::string, std::string>> edges();

/// Clears the recorded edge graph (not the per-thread held stacks;
/// callers must not hold any OrderedMutex). Test-only.
void reset();

/// Number of locks the calling thread currently holds. Test-only.
std::size_t held_depth();

namespace detail {
void note_acquire(const void* mutex, const char* name);
void note_acquired(const void* mutex, const char* name);
void note_release(const void* mutex);
}  // namespace detail

}  // namespace lockorder

/// Named mutex participating in lock-order validation. Satisfies
/// BasicLockable/Lockable, so it works with lock_guard, unique_lock,
/// scoped_lock and condition_variable_any.
class OrderedMutex {
 public:
  explicit OrderedMutex(const char* name) noexcept : name_(name) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
#if defined(CKAT_VALIDATE)
    // Check and record the ordering edge *before* blocking: a real
    // inversion must be reported, not deadlocked on.
    lockorder::detail::note_acquire(this, name_);
#endif
    mutex_.lock();
#if defined(CKAT_VALIDATE)
    lockorder::detail::note_acquired(this, name_);
#endif
  }

  bool try_lock() {
    const bool ok = mutex_.try_lock();
#if defined(CKAT_VALIDATE)
    // A try_lock cannot block, hence cannot deadlock: it joins the
    // held stack (releases must balance) but records no order edges.
    if (ok) lockorder::detail::note_acquired(this, name_);
#endif
    return ok;
  }

  void unlock() {
#if defined(CKAT_VALIDATE)
    lockorder::detail::note_release(this);
#endif
    mutex_.unlock();
  }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex mutex_;
  const char* name_;
};

}  // namespace ckat::util

namespace ckat {
using util::OrderedMutex;
}  // namespace ckat

#endif  // CKAT_UTIL_LOCKORDER_HPP_
