// Exact t-SNE (van der Maaten & Hinton 2008) for the Fig. 4
// visualization: high-dimensional query feature vectors projected to 2D
// while preserving local structure. The paper's point sets (queried
// objects of 8 users) are small, so the O(n^2) exact gradient is the
// right tool -- no Barnes-Hut approximation needed.
#pragma once

#include <cstdint>
#include <vector>

#include "facility/dataset.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace ckat::analysis {

struct TsneConfig {
  double perplexity = 20.0;
  int iterations = 500;
  double learning_rate = 150.0;
  double early_exaggeration = 12.0;
  int exaggeration_iters = 100;
  double initial_momentum = 0.5;
  double final_momentum = 0.8;
  int momentum_switch_iter = 250;
  std::uint64_t seed = 3;
};

/// Embeds the rows of `points` (n x D) into 2D. Returns an (n x 2)
/// tensor. Throws std::invalid_argument for fewer than 3 points or if
/// the perplexity is infeasible (> (n-1)/3).
nn::Tensor tsne_embed(const nn::Tensor& points, const TsneConfig& config = {});

/// Symmetrized input similarities P (exposed for tests): row-stochastic
/// conditional Gaussians with per-point bandwidth calibrated to the
/// target perplexity by bisection, then symmetrized and normalized.
nn::Tensor tsne_similarities(const nn::Tensor& points, double perplexity);

/// Fig. 4 featurization: one row per (user, distinct queried object)
/// pair, features = one-hot site + one-hot data type + one-hot
/// discipline of the object. `point_users` receives the user of each
/// row (for coloring the plot by user). When `max_objects_per_user` is
/// non-zero, only each user's most frequently queried objects are kept
/// (their query "signature", filtering one-off background queries).
nn::Tensor query_feature_matrix(const facility::FacilityDataset& dataset,
                                const std::vector<std::uint32_t>& users,
                                std::vector<std::uint32_t>& point_users,
                                std::vector<std::uint32_t>& point_objects,
                                std::size_t max_objects_per_user = 0);

}  // namespace ckat::analysis
