#include "analysis/trace_stats.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace ckat::analysis {

DistributionCurves query_distribution_curves(
    const facility::FacilityDataset& dataset) {
  const std::size_t n_users = dataset.n_users();
  std::vector<std::set<std::uint32_t>> objects(n_users), locations(n_users),
      types(n_users);
  for (const facility::QueryRecord& rec : dataset.trace()) {
    const facility::DataObject& o = dataset.model().objects[rec.object];
    objects[rec.user].insert(rec.object);
    locations[rec.user].insert(o.site);
    types[rec.user].insert(o.data_type);
  }

  DistributionCurves curves;
  auto collect = [&](const std::vector<std::set<std::uint32_t>>& sets,
                     std::vector<std::size_t>& out) {
    out.reserve(n_users);
    for (const auto& s : sets) out.push_back(s.size());
    std::sort(out.begin(), out.end(), std::greater<>());
  };
  collect(objects, curves.objects_per_user);
  collect(locations, curves.locations_per_user);
  collect(types, curves.types_per_user);
  return curves;
}

AffinityMeasurement measure_affinities(const facility::FacilityDataset& dataset,
                                       std::size_t min_queries) {
  const std::size_t n_users = dataset.n_users();
  std::vector<std::map<std::uint32_t, std::size_t>> region_counts(n_users),
      type_counts(n_users);
  std::vector<std::size_t> totals(n_users, 0);
  for (const facility::QueryRecord& rec : dataset.trace()) {
    const facility::DataObject& o = dataset.model().objects[rec.object];
    region_counts[rec.user][o.region]++;
    type_counts[rec.user][o.data_type]++;
    totals[rec.user]++;
  }

  AffinityMeasurement m;
  double region_acc = 0.0, type_acc = 0.0;
  for (std::size_t u = 0; u < n_users; ++u) {
    if (totals[u] < min_queries) continue;
    auto modal = [](const std::map<std::uint32_t, std::size_t>& counts) {
      std::size_t best = 0;
      for (const auto& [key, count] : counts) best = std::max(best, count);
      return best;
    };
    region_acc += static_cast<double>(modal(region_counts[u])) /
                  static_cast<double>(totals[u]);
    type_acc += static_cast<double>(modal(type_counts[u])) /
                static_cast<double>(totals[u]);
    m.n_users++;
  }
  if (m.n_users > 0) {
    m.modal_region_fraction = region_acc / static_cast<double>(m.n_users);
    m.modal_type_fraction = type_acc / static_cast<double>(m.n_users);
  }
  return m;
}

std::vector<std::uint32_t> most_active_members(
    const facility::FacilityDataset& dataset, std::uint32_t organization,
    std::size_t n) {
  std::vector<std::size_t> activity(dataset.n_users(), 0);
  for (const facility::QueryRecord& rec : dataset.trace()) {
    activity[rec.user]++;
  }
  std::vector<std::uint32_t> members;
  for (std::uint32_t u = 0; u < dataset.n_users(); ++u) {
    if (dataset.users().user(u).organization == organization) {
      members.push_back(u);
    }
  }
  std::sort(members.begin(), members.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (activity[a] != activity[b]) return activity[a] > activity[b];
              return a < b;
            });
  if (members.size() > n) members.resize(n);
  return members;
}

}  // namespace ckat::analysis
