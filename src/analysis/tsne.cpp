#include "analysis/tsne.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>

namespace ckat::analysis {

namespace {

/// Squared Euclidean distance matrix (n x n).
nn::Tensor pairwise_squared_distances(const nn::Tensor& x) {
  const std::size_t n = x.rows();
  nn::Tensor d(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      auto a = x.row(i);
      auto b = x.row(j);
      float acc = 0.0f;
      for (std::size_t c = 0; c < a.size(); ++c) {
        const float diff = a[c] - b[c];
        acc += diff * diff;
      }
      d(i, j) = acc;
      d(j, i) = acc;
    }
  }
  return d;
}

}  // namespace

nn::Tensor tsne_similarities(const nn::Tensor& points, double perplexity) {
  const std::size_t n = points.rows();
  if (n < 3) throw std::invalid_argument("tsne: need at least 3 points");
  if (perplexity <= 1.0 || perplexity > static_cast<double>(n - 1)) {
    throw std::invalid_argument("tsne: infeasible perplexity");
  }
  const nn::Tensor d = pairwise_squared_distances(points);
  const double target_entropy = std::log(perplexity);

  nn::Tensor p(n, n);
  std::vector<double> row(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Bisection on beta = 1/(2 sigma^2) to hit the target entropy.
    double beta = 1.0, beta_lo = 0.0,
           beta_hi = std::numeric_limits<double>::infinity();
    for (int iter = 0; iter < 64; ++iter) {
      double sum = 0.0, weighted = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) {
          row[j] = 0.0;
          continue;
        }
        row[j] = std::exp(-beta * static_cast<double>(d(i, j)));
        sum += row[j];
        weighted += row[j] * d(i, j);
      }
      if (sum <= 0.0) {  // all mass collapsed; lower beta
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
        continue;
      }
      // H = log(sum) + beta * E[d]
      const double entropy = std::log(sum) + beta * weighted / sum;
      const double diff = entropy - target_entropy;
      if (std::fabs(diff) < 1e-5) break;
      if (diff > 0.0) {  // entropy too high -> sharpen
        beta_lo = beta;
        beta = std::isinf(beta_hi) ? beta * 2.0 : (beta + beta_hi) / 2.0;
      } else {
        beta_hi = beta;
        beta = (beta_lo + beta) / 2.0;
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += row[j];
    for (std::size_t j = 0; j < n; ++j) {
      p(i, j) = sum > 0.0 ? static_cast<float>(row[j] / sum)
                          : (j != i ? 1.0f / static_cast<float>(n - 1) : 0.0f);
    }
  }

  // Symmetrize and normalize: P_ij = (p_j|i + p_i|j) / 2n.
  nn::Tensor sym(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      sym(i, j) = (p(i, j) + p(j, i)) / (2.0f * static_cast<float>(n));
    }
  }
  return sym;
}

nn::Tensor tsne_embed(const nn::Tensor& points, const TsneConfig& config) {
  const std::size_t n = points.rows();
  nn::Tensor p = tsne_similarities(points, config.perplexity);

  // Early exaggeration.
  for (float& v : p.flat()) {
    v *= static_cast<float>(config.early_exaggeration);
  }

  util::Rng rng(config.seed);
  nn::Tensor y(n, 2), velocity(n, 2), gains(n, 2, 1.0f);
  for (float& v : y.flat()) v = static_cast<float>(rng.gaussian(0.0, 1e-4));

  nn::Tensor q_numerator(n, n);
  for (int iter = 0; iter < config.iterations; ++iter) {
    if (iter == config.exaggeration_iters) {
      for (float& v : p.flat()) {
        v /= static_cast<float>(config.early_exaggeration);
      }
    }
    const double momentum = iter < config.momentum_switch_iter
                                ? config.initial_momentum
                                : config.final_momentum;

    // Student-t kernel numerators and their sum.
    double z = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      q_numerator(i, i) = 0.0f;
      for (std::size_t j = i + 1; j < n; ++j) {
        const float dx = y(i, 0) - y(j, 0);
        const float dy = y(i, 1) - y(j, 1);
        const float num = 1.0f / (1.0f + dx * dx + dy * dy);
        q_numerator(i, j) = num;
        q_numerator(j, i) = num;
        z += 2.0 * num;
      }
    }
    z = std::max(z, 1e-12);

    // Gradient dC/dy_i = 4 sum_j (P_ij - Q_ij) num_ij (y_i - y_j).
    for (std::size_t i = 0; i < n; ++i) {
      double gx = 0.0, gy = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        if (j == i) continue;
        const double q = q_numerator(i, j) / z;
        const double mult =
            4.0 * (static_cast<double>(p(i, j)) - q) * q_numerator(i, j);
        gx += mult * (y(i, 0) - y(j, 0));
        gy += mult * (y(i, 1) - y(j, 1));
      }
      for (std::size_t dim = 0; dim < 2; ++dim) {
        const double grad = dim == 0 ? gx : gy;
        // Adaptive gains (standard t-SNE implementation detail).
        const bool same_sign =
            (grad > 0.0) == (velocity(i, dim) > 0.0f);
        gains(i, dim) = std::max(
            0.01f, same_sign ? gains(i, dim) * 0.8f : gains(i, dim) + 0.2f);
        velocity(i, dim) = static_cast<float>(
            momentum * velocity(i, dim) -
            config.learning_rate * gains(i, dim) * grad);
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      y(i, 0) += velocity(i, 0);
      y(i, 1) += velocity(i, 1);
    }

    // Re-center (the embedding is translation invariant).
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mx += y(i, 0);
      my += y(i, 1);
    }
    mx /= static_cast<double>(n);
    my /= static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      y(i, 0) -= static_cast<float>(mx);
      y(i, 1) -= static_cast<float>(my);
    }
  }
  return y;
}

nn::Tensor query_feature_matrix(const facility::FacilityDataset& dataset,
                                const std::vector<std::uint32_t>& users,
                                std::vector<std::uint32_t>& point_users,
                                std::vector<std::uint32_t>& point_objects,
                                std::size_t max_objects_per_user) {
  // Distinct queried objects per selected user, with query counts.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> pair_counts;
  std::set<std::uint32_t> wanted(users.begin(), users.end());
  for (const facility::QueryRecord& rec : dataset.trace()) {
    if (wanted.count(rec.user)) pair_counts[{rec.user, rec.object}]++;
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  if (max_objects_per_user == 0) {
    for (const auto& [pair, count] : pair_counts) pairs.insert(pair);
  } else {
    // Keep each user's most frequently queried objects only.
    std::map<std::uint32_t,
             std::vector<std::pair<std::size_t, std::uint32_t>>> per_user;
    for (const auto& [pair, count] : pair_counts) {
      per_user[pair.first].push_back({count, pair.second});
    }
    for (auto& [user, objects] : per_user) {
      std::sort(objects.begin(), objects.end(),
                [](const auto& a, const auto& b) {
                  if (a.first != b.first) return a.first > b.first;
                  return a.second < b.second;
                });
      if (objects.size() > max_objects_per_user) {
        objects.resize(max_objects_per_user);
      }
      for (const auto& [count, object] : objects) {
        pairs.insert({user, object});
      }
    }
  }

  const facility::FacilityModel& model = dataset.model();
  const std::size_t n_sites = model.sites.size();
  const std::size_t n_types = model.data_types.size();
  const std::size_t n_disciplines = model.disciplines.size();
  const std::size_t dims = n_sites + n_types + n_disciplines;

  point_users.clear();
  point_objects.clear();
  nn::Tensor features(pairs.size(), dims);
  std::size_t row = 0;
  for (const auto& [user, object] : pairs) {
    const facility::DataObject& o = model.objects[object];
    features(row, o.site) = 1.0f;
    features(row, n_sites + o.data_type) = 1.0f;
    features(row, n_sites + n_types + o.discipline) = 1.0f;
    point_users.push_back(user);
    point_objects.push_back(object);
    ++row;
  }
  return features;
}

}  // namespace ckat::analysis
