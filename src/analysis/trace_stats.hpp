// Sec. III trace analyses.
//
// Fig. 3: per-user distribution curves of distinct queried data objects,
// instrument locations and data types.
// Sec. III.B2: the measured affinity fractions (share of a user's
// queries hitting their modal region / modal data type).
#pragma once

#include <cstdint>
#include <vector>

#include "facility/dataset.hpp"

namespace ckat::analysis {

/// One Fig. 3 panel: the per-user count of distinct <quantity>, sorted
/// descending (the paper plots these against user id after sorting).
struct DistributionCurves {
  std::vector<std::size_t> objects_per_user;    // Fig. 3 (a)/(b)
  std::vector<std::size_t> locations_per_user;  // Fig. 3 (c)/(d)
  std::vector<std::size_t> types_per_user;      // Fig. 3 (e)/(f)
};

DistributionCurves query_distribution_curves(
    const facility::FacilityDataset& dataset);

/// Affinity measurements of Sec. III.B2 averaged over users with at
/// least `min_queries` queries: fraction of queries to the user's modal
/// region and modal data type.
struct AffinityMeasurement {
  double modal_region_fraction = 0.0;
  double modal_type_fraction = 0.0;
  std::size_t n_users = 0;
};

AffinityMeasurement measure_affinities(const facility::FacilityDataset& dataset,
                                       std::size_t min_queries = 5);

/// The `n` most active users (by query count) belonging to the given
/// organization -- the Fig. 4 user selection (top-8 of Rutgers / UW).
std::vector<std::uint32_t> most_active_members(
    const facility::FacilityDataset& dataset, std::uint32_t organization,
    std::size_t n);

}  // namespace ckat::analysis
