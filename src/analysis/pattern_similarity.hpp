// Fig. 5 reproduction: the probability that two users share the same
// query pattern -- in terms of instrument locality (modal queried site)
// and data domain (modal queried data type) -- compared between
// same-city pairs and randomly sampled pairs.
#pragma once

#include <cstdint>

#include "facility/dataset.hpp"
#include "util/rng.hpp"

namespace ckat::analysis {

struct PatternSharingResult {
  // Probability that a pair's modal queried site matches.
  double same_city_locality = 0.0;
  double random_locality = 0.0;
  // Probability that a pair's modal queried data type matches.
  double same_city_domain = 0.0;
  double random_domain = 0.0;

  [[nodiscard]] double locality_ratio() const {
    return random_locality > 0.0 ? same_city_locality / random_locality : 0.0;
  }
  [[nodiscard]] double domain_ratio() const {
    return random_domain > 0.0 ? same_city_domain / random_domain : 0.0;
  }
};

/// Samples `n_pairs` same-city pairs and `n_pairs` random pairs from
/// users with >= `min_queries` trace queries (paper: 10,000 pairs per
/// group) and measures pattern-sharing probabilities.
PatternSharingResult measure_pattern_sharing(
    const facility::FacilityDataset& dataset, std::size_t n_pairs,
    util::Rng& rng, std::size_t min_queries = 5);

}  // namespace ckat::analysis
