#include "analysis/pattern_similarity.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <vector>

namespace ckat::analysis {

PatternSharingResult measure_pattern_sharing(
    const facility::FacilityDataset& dataset, std::size_t n_pairs,
    util::Rng& rng, std::size_t min_queries) {
  const std::size_t n_users = dataset.n_users();

  // Modal queried site and data type per user.
  std::vector<std::map<std::uint32_t, std::size_t>> site_counts(n_users),
      type_counts(n_users);
  std::vector<std::size_t> totals(n_users, 0);
  for (const facility::QueryRecord& rec : dataset.trace()) {
    const facility::DataObject& o = dataset.model().objects[rec.object];
    site_counts[rec.user][o.site]++;
    type_counts[rec.user][o.data_type]++;
    totals[rec.user]++;
  }
  auto modal_key = [](const std::map<std::uint32_t, std::size_t>& counts) {
    std::uint32_t best_key = 0;
    std::size_t best_count = 0;
    for (const auto& [key, count] : counts) {
      if (count > best_count) {
        best_count = count;
        best_key = key;
      }
    }
    return best_key;
  };
  std::vector<std::uint32_t> modal_site(n_users, 0), modal_type(n_users, 0);
  std::vector<bool> active(n_users, false);
  std::vector<std::uint32_t> active_users;
  for (std::size_t u = 0; u < n_users; ++u) {
    if (totals[u] < min_queries) continue;
    active[u] = true;
    active_users.push_back(static_cast<std::uint32_t>(u));
    modal_site[u] = modal_key(site_counts[u]);
    modal_type[u] = modal_key(type_counts[u]);
  }
  if (active_users.size() < 2) {
    throw std::invalid_argument("measure_pattern_sharing: too few active users");
  }

  // Active users grouped by city (for the same-city pair sampler).
  std::map<std::uint32_t, std::vector<std::uint32_t>> by_city;
  for (std::uint32_t u : active_users) {
    by_city[dataset.users().user(u).city].push_back(u);
  }
  std::vector<const std::vector<std::uint32_t>*> multi_cities;
  std::vector<double> city_weights;
  for (const auto& [city, members] : by_city) {
    if (members.size() >= 2) {
      multi_cities.push_back(&members);
      // Weight by the number of pairs so sampling matches the pair space.
      city_weights.push_back(0.5 * static_cast<double>(members.size()) *
                             static_cast<double>(members.size() - 1));
    }
  }
  if (multi_cities.empty()) {
    throw std::invalid_argument(
        "measure_pattern_sharing: no city has two active users");
  }

  std::size_t same_loc = 0, same_dom = 0, rand_loc = 0, rand_dom = 0;
  for (std::size_t i = 0; i < n_pairs; ++i) {
    // Same-city pair.
    const auto& members = *multi_cities[rng.weighted_index(city_weights)];
    const auto picks = rng.sample_without_replacement(members.size(), 2);
    const std::uint32_t a = members[picks[0]];
    const std::uint32_t b = members[picks[1]];
    same_loc += modal_site[a] == modal_site[b];
    same_dom += modal_type[a] == modal_type[b];

    // Random pair.
    const auto rpicks = rng.sample_without_replacement(active_users.size(), 2);
    const std::uint32_t c = active_users[rpicks[0]];
    const std::uint32_t d = active_users[rpicks[1]];
    rand_loc += modal_site[c] == modal_site[d];
    rand_dom += modal_type[c] == modal_type[d];
  }

  PatternSharingResult result;
  const double n = static_cast<double>(n_pairs);
  result.same_city_locality = same_loc / n;
  result.same_city_domain = same_dom / n;
  result.random_locality = rand_loc / n;
  result.random_domain = rand_dom / n;
  return result;
}

}  // namespace ckat::analysis
