#include "eval/evaluator.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ckat::eval {

TopKMetrics evaluate_topk(const Recommender& model,
                          const graph::InteractionSplit& split,
                          const EvalConfig& config) {
  const std::size_t n_users = split.test.n_users();
  const std::size_t n_items = split.test.n_items();
  if (model.n_users() != n_users || model.n_items() != n_items) {
    throw std::invalid_argument("evaluate_topk: model/split size mismatch");
  }
  if (config.candidate_items != nullptr &&
      config.candidate_items->size() != n_items) {
    throw std::invalid_argument("evaluate_topk: candidate mask size mismatch");
  }

  const std::string model_name = model.name();
  obs::TraceSpan span("eval.topk", {{"model", model_name}});
  const bool telemetry = obs::telemetry_enabled();
  obs::Histogram* scoring_latency =
      telemetry ? &obs::MetricsRegistry::global().histogram(
                      obs::metric_names::kEvalScoreSeconds,
                      {{"model", model_name}})
                : nullptr;

  TopKMetrics total;
  std::vector<float> scores(n_items);
  for (std::uint32_t u = 0; u < n_users; ++u) {
    auto relevant = split.test.items_of(u);
    if (relevant.empty()) continue;
    if (config.candidate_items != nullptr) {
      // Skip users whose test items fall entirely outside the mask.
      bool any_in_mask = false;
      for (std::uint32_t item : relevant) {
        any_in_mask |= (*config.candidate_items)[item];
      }
      if (!any_in_mask) continue;
    }

    util::Timer score_timer;
    model.score_items(u, scores);
    if (scoring_latency != nullptr) {
      scoring_latency->observe(score_timer.seconds());
    }
    if (config.candidate_items != nullptr) {
      for (std::size_t i = 0; i < n_items; ++i) {
        if (!(*config.candidate_items)[i]) {
          scores[i] = -std::numeric_limits<float>::infinity();
        }
      }
    }
    if (config.mask_train_items) {
      for (std::uint32_t item : split.train.items_of(u)) {
        scores[item] = -std::numeric_limits<float>::infinity();
      }
    }
    const auto topk = top_k_indices(scores, config.k);
    total += user_topk_metrics(topk, relevant);
  }
  total.finalize();
  return total;
}

}  // namespace ckat::eval
