#include "eval/evaluator.hpp"

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "eval/ranker.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace ckat::eval {

namespace {

void validate_inputs(const Recommender& model,
                     const graph::InteractionSplit& split,
                     const EvalConfig& config) {
  if (model.n_users() != split.test.n_users() ||
      model.n_items() != split.test.n_items()) {
    throw std::invalid_argument("evaluate_topk: model/split size mismatch");
  }
  if (config.candidate_items != nullptr &&
      config.candidate_items->size() != split.test.n_items()) {
    throw std::invalid_argument("evaluate_topk: candidate mask size mismatch");
  }
}

/// Users the protocol ranks, plus the audit trail of the ones it does
/// not: users without test items, and users whose test items all fall
/// outside the candidate mask.
struct EligibleUsers {
  std::vector<std::uint32_t> users;
  std::size_t skipped_no_test = 0;
  std::size_t skipped_outside_mask = 0;
};

EligibleUsers collect_eligible_users(const graph::InteractionSplit& split,
                                     const EvalConfig& config) {
  EligibleUsers out;
  const std::size_t n_users = split.test.n_users();
  for (std::uint32_t u = 0; u < n_users; ++u) {
    const auto relevant = split.test.items_of(u);
    if (relevant.empty()) {
      ++out.skipped_no_test;
      continue;
    }
    if (config.candidate_items != nullptr) {
      bool any_in_mask = false;
      for (const std::uint32_t item : relevant) {
        any_in_mask |= (*config.candidate_items)[item];
      }
      if (!any_in_mask) {
        ++out.skipped_outside_mask;
        continue;
      }
    }
    out.users.push_back(u);
  }
  return out;
}

void record_skips(const std::string& model_name, const EligibleUsers& users) {
  if (!obs::telemetry_enabled()) return;
  auto& registry = obs::MetricsRegistry::global();
  if (users.skipped_no_test > 0) {
    registry
        .counter(obs::metric_names::kEvalUsersSkippedTotal,
                 {{"model", model_name}, {"reason", "no_test_items"}})
        .inc(users.skipped_no_test);
  }
  if (users.skipped_outside_mask > 0) {
    registry
        .counter(obs::metric_names::kEvalUsersSkippedTotal,
                 {{"model", model_name}, {"reason", "outside_mask"}})
        .inc(users.skipped_outside_mask);
  }
}

/// Number of items the masking protocol leaves rankable for `user`:
/// the candidate-set size minus the user's in-candidate train items.
/// This is the @k denominator basis (see user_topk_metrics).
std::size_t user_candidate_count(std::uint32_t user, std::size_t base,
                                 const graph::InteractionSplit& split,
                                 const EvalConfig& config) {
  std::size_t n = base;
  if (!config.mask_train_items) return n;
  for (const std::uint32_t item : split.train.items_of(user)) {
    if (config.candidate_items == nullptr || (*config.candidate_items)[item]) {
      --n;
    }
  }
  return n;
}

void apply_masks(std::uint32_t user, std::span<float> row,
                 const graph::InteractionSplit& split,
                 const EvalConfig& config) {
  constexpr float kMasked = -std::numeric_limits<float>::infinity();
  // Candidate mask first, train mask second: a train item outside the
  // candidate set is already -inf either way, so the order only matters
  // for reasoning, not results.
  if (config.candidate_items != nullptr) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (!(*config.candidate_items)[i]) row[i] = kMasked;
    }
  }
  if (config.mask_train_items) {
    for (const std::uint32_t item : split.train.items_of(user)) {
      row[item] = kMasked;
    }
  }
}

std::size_t base_candidate_count(std::size_t n_items,
                                 const EvalConfig& config) {
  if (config.candidate_items == nullptr) return n_items;
  std::size_t n = 0;
  for (const bool in : *config.candidate_items) n += in ? 1 : 0;
  return n;
}

}  // namespace

TopKMetrics evaluate_topk(const Recommender& model,
                          const graph::InteractionSplit& split,
                          const EvalConfig& config) {
  validate_inputs(model, split, config);
  const std::size_t n_items = split.test.n_items();

  const std::string model_name = model.name();
  obs::TraceSpan span("eval.topk", {{"model", model_name}});
  const bool telemetry = obs::telemetry_enabled();
  obs::Histogram* scoring_latency =
      telemetry ? &obs::MetricsRegistry::global().histogram(
                      obs::metric_names::kEvalScoreSeconds,
                      {{"model", model_name}})
                : nullptr;

  const EligibleUsers eligible = collect_eligible_users(split, config);
  record_skips(model_name, eligible);
  const std::size_t base_candidates = base_candidate_count(n_items, config);

  RankerConfig ranker_config;
  ranker_config.k = config.k;
  ranker_config.block_size = config.block_size;
  ranker_config.threads = config.threads;
  if (scoring_latency != nullptr) {
    // Histogram::observe is atomic, so this is safe from ranker worker
    // threads; one observation per block keeps the overhead per user
    // sub-linear.
    ranker_config.score_observer = [scoring_latency](double seconds,
                                                     std::size_t /*users*/) {
      scoring_latency->observe(seconds);
    };
  }
  const BatchRanker ranker(model, ranker_config);

  // Per-user metrics land in their slot, then are summed serially in
  // slot order: the final totals are bit-identical at every thread
  // count and block size (see DESIGN.md §11).
  std::vector<TopKMetrics> per_user(eligible.users.size());
  ranker.rank(
      eligible.users,
      [&split, &config](std::uint32_t user, std::span<float> row) {
        apply_masks(user, row, split, config);
      },
      [&](std::size_t slot, std::uint32_t user,
          std::span<const std::uint32_t> topk) {
        per_user[slot] = user_topk_metrics(
            topk, split.test.items_of(user), config.k,
            user_candidate_count(user, base_candidates, split, config));
      });

  TopKMetrics total;
  for (const TopKMetrics& m : per_user) total += m;
  total.finalize();
  return total;
}

TopKMetrics evaluate_topk_serial(const Recommender& model,
                                 const graph::InteractionSplit& split,
                                 const EvalConfig& config) {
  validate_inputs(model, split, config);
  const std::size_t n_items = split.test.n_items();

  const std::string model_name = model.name();
  obs::TraceSpan span("eval.topk_serial", {{"model", model_name}});
  const bool telemetry = obs::telemetry_enabled();
  obs::Histogram* scoring_latency =
      telemetry ? &obs::MetricsRegistry::global().histogram(
                      obs::metric_names::kEvalScoreSeconds,
                      {{"model", model_name}})
                : nullptr;

  const EligibleUsers eligible = collect_eligible_users(split, config);
  record_skips(model_name, eligible);
  const std::size_t base_candidates = base_candidate_count(n_items, config);

  TopKMetrics total;
  std::vector<float> scores(n_items);
  for (const std::uint32_t u : eligible.users) {
    util::Timer score_timer;
    model.score_items(u, scores);
    if (scoring_latency != nullptr) {
      scoring_latency->observe(score_timer.seconds());
    }
    apply_masks(u, scores, split, config);
    const auto topk = top_k_indices(scores, config.k);
    total += user_topk_metrics(
        topk, split.test.items_of(u), config.k,
        user_candidate_count(u, base_candidates, split, config));
  }
  total.finalize();
  return total;
}

}  // namespace ckat::eval
