// Hyperparameter grid search (Sec. VI.D: "We apply a grid search for
// hyperparameters: the learning rate is tuned in {0.05, 0.01, 0.005,
// 0.001}, the L2 coefficient within {1e-5 ... 1e2}, and the dropout
// ratio in {0.0 ... 0.8}").
//
// The driver carves a validation split out of the training
// interactions, trains one model per grid point through a
// caller-supplied factory, and selects the point with the best
// validation recall@K. The winner should then be retrained on the full
// training set by the caller.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "eval/evaluator.hpp"
#include "eval/recommender.hpp"
#include "graph/interactions.hpp"

namespace ckat::eval {

/// One hyperparameter combination (extend as needed; these are the
/// dimensions the paper tunes).
struct GridPoint {
  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  float dropout = 0.1f;

  friend bool operator==(const GridPoint&, const GridPoint&) = default;
};

/// The paper's search space (Sec. VI.D), trimmed to the values that are
/// sane at this data scale.
std::vector<GridPoint> paper_grid();

/// Builds an untrained model for one grid point over the given
/// training interactions.
using ModelFactory = std::function<std::unique_ptr<Recommender>(
    const GridPoint&, const graph::InteractionSet& train)>;

struct GridSearchConfig {
  double validation_fraction = 0.8;  // train split kept for fitting
  std::size_t k = 20;
  std::uint64_t seed = 17;
};

struct GridSearchResult {
  GridPoint best;
  TopKMetrics best_metrics;
  /// Every evaluated point with its validation metrics, in grid order.
  std::vector<std::pair<GridPoint, TopKMetrics>> trials;
};

/// Runs the search. Throws std::invalid_argument on an empty grid.
GridSearchResult grid_search(const ModelFactory& factory,
                             const graph::InteractionSet& train,
                             const std::vector<GridPoint>& grid,
                             const GridSearchConfig& config = {});

}  // namespace ckat::eval
