// Experiment runner shared by the bench harnesses and examples: builds
// any of the eight models by name with the paper's default settings,
// trains it and evaluates recall@20 / ndcg@20 on a split.
//
// Training epochs honor CKAT_EPOCH_SCALE_PCT (util::scaled_epochs) so
// the full table benches can be smoke-run quickly.
#pragma once

#include <string>
#include <vector>

#include "core/ckat.hpp"
#include "eval/evaluator.hpp"
#include "graph/ckg.hpp"
#include "graph/interactions.hpp"

namespace ckat::eval {

struct ModelResult {
  std::string model;
  TopKMetrics metrics;
  double fit_seconds = 0.0;
  double eval_seconds = 0.0;
};

/// Names accepted by run_model, in the paper's Table II order.
const std::vector<std::string>& all_model_names();

/// CKAT hyperparameters found by the Sec. VI.D grid search, which
/// depend on catalog size: larger item sets need smaller CF batches
/// (more update steps per epoch) and a few more epochs.
core::CkatConfig default_ckat_config(std::size_t n_items);

/// Builds, trains and evaluates one model. Throws std::invalid_argument
/// for unknown names. `seed` controls every stochastic component.
ModelResult run_model(const std::string& name,
                      const graph::CollaborativeKg& ckg,
                      const graph::InteractionSplit& split,
                      std::uint64_t seed = 7, std::size_t k = 20);

/// Trains and evaluates CKAT with an explicit config (for the Table
/// III-V ablations). The config's epoch count is scaled by
/// CKAT_EPOCH_SCALE_PCT like every other model.
ModelResult run_ckat(core::CkatConfig config,
                     const graph::CollaborativeKg& ckg,
                     const graph::InteractionSplit& split, std::size_t k = 20);

}  // namespace ckat::eval
