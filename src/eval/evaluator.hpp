// Full-ranking top-K evaluation protocol (Sec. VI.A-B): for every user
// with test interactions, rank ALL items the user has not interacted
// with in training, take the top K, and score against the held-out test
// items.
#pragma once

#include <vector>

#include "eval/metrics.hpp"
#include "eval/recommender.hpp"
#include "graph/interactions.hpp"

namespace ckat::eval {

struct EvalConfig {
  std::size_t k = 20;  // paper default (Sec. VI.B)
  /// Exclude each user's training items from the candidate ranking
  /// (standard protocol; they are known positives, not discoveries).
  bool mask_train_items = true;
  /// Optional restriction of the candidate set: when non-null, only
  /// items with candidate_items[i] == true are ranked (used e.g. for
  /// per-facility evaluation of a multi-facility model). Must outlive
  /// the evaluate_topk call and have size n_items.
  const std::vector<bool>* candidate_items = nullptr;
};

/// Evaluates the model over every user that has >= 1 test item.
TopKMetrics evaluate_topk(const Recommender& model,
                          const graph::InteractionSplit& split,
                          const EvalConfig& config = {});

}  // namespace ckat::eval
