// Full-ranking top-K evaluation protocol (Sec. VI.A-B): for every user
// with test interactions, rank ALL items the user has not interacted
// with in training, take the top K, and score against the held-out test
// items. evaluate_topk runs on the batched ranking engine
// (eval/ranker.hpp); evaluate_topk_serial is the reference per-user
// implementation the batched path is tested bit-identical against.
#pragma once

#include <vector>

#include "eval/metrics.hpp"
#include "eval/recommender.hpp"
#include "graph/interactions.hpp"

namespace ckat::eval {

struct EvalConfig {
  std::size_t k = 20;  // paper default (Sec. VI.B)
  /// Exclude each user's training items from the candidate ranking
  /// (standard protocol; they are known positives, not discoveries).
  bool mask_train_items = true;
  /// Optional restriction of the candidate set: when non-null, only
  /// items with candidate_items[i] == true are ranked (used e.g. for
  /// per-facility evaluation of a multi-facility model). Must outlive
  /// the evaluate_topk call and have size n_items.
  const std::vector<bool>* candidate_items = nullptr;
  /// Worker threads for the batched engine. 0 = CKAT_EVAL_THREADS
  /// (default 1). Only raise above 1 for models whose score_batch /
  /// score_items are safe for concurrent const calls —
  /// serve::ResilientRecommender is not. Metrics are bit-identical at
  /// every thread count (per-user results are reduced in user order).
  int threads = 0;
  /// Users per score_batch block. 0 = CKAT_EVAL_BLOCK (default 64).
  std::size_t block_size = 0;
};

/// Evaluates the model over every user that has >= 1 test item, using
/// the batched ranking engine. Users skipped by the protocol (no test
/// items, or all test items outside the candidate mask) are counted in
/// the eval users-skipped counter, labeled by reason, so skips are
/// auditable instead of silent.
TopKMetrics evaluate_topk(const Recommender& model,
                          const graph::InteractionSplit& split,
                          const EvalConfig& config = {});

/// Reference implementation: one score_items call and one full-row
/// top-K per user, always single-threaded (threads/block_size are
/// ignored). Kept as the bit-identical oracle for the batched engine
/// and for the ranking microbenchmark's serial baseline.
TopKMetrics evaluate_topk_serial(const Recommender& model,
                                 const graph::InteractionSplit& split,
                                 const EvalConfig& config = {});

}  // namespace ckat::eval
