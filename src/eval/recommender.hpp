// Common interface every recommendation model (CKAT + the seven
// baselines) implements, so the evaluator and the experiment harness are
// model-agnostic.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

namespace ckat::eval {

class Recommender {
 public:
  virtual ~Recommender() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains the model on the data it was constructed with.
  virtual void fit() = 0;

  /// Writes a preference score for every item (out.size() == n_items).
  /// Higher is better. Must be callable only after fit().
  virtual void score_items(std::uint32_t user, std::span<float> out) const = 0;

  /// Scores a block of users at once: out holds users.size() * n_items()
  /// floats, row-major (row i = the catalog scores of users[i]). The
  /// default loops score_items per user, so every model keeps working;
  /// models backed by dense embedding tables override it with one tiled
  /// GEMM over the block (see eval/ranker.hpp). Overrides must produce
  /// bit-identical scores to score_items — the batched evaluator relies
  /// on it to reproduce the serial protocol exactly.
  virtual void score_batch(std::span<const std::uint32_t> users,
                           std::span<float> out) const {
    const std::size_t stride = n_items();
    if (out.size() != users.size() * stride) {
      throw std::invalid_argument(
          "Recommender::score_batch: output span size mismatch");
    }
    for (std::size_t i = 0; i < users.size(); ++i) {
      score_items(users[i], out.subspan(i * stride, stride));
    }
  }

  [[nodiscard]] virtual std::size_t n_users() const = 0;
  [[nodiscard]] virtual std::size_t n_items() const = 0;
};

}  // namespace ckat::eval
