// Common interface every recommendation model (CKAT + the seven
// baselines) implements, so the evaluator and the experiment harness are
// model-agnostic.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ckat::eval {

class Recommender {
 public:
  virtual ~Recommender() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Trains the model on the data it was constructed with.
  virtual void fit() = 0;

  /// Writes a preference score for every item (out.size() == n_items).
  /// Higher is better. Must be callable only after fit().
  virtual void score_items(std::uint32_t user, std::span<float> out) const = 0;

  [[nodiscard]] virtual std::size_t n_users() const = 0;
  [[nodiscard]] virtual std::size_t n_items() const = 0;
};

}  // namespace ckat::eval
