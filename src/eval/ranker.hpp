// Batched ranking engine (DESIGN.md §11): scores a *block* of users
// against the full catalog in one Recommender::score_batch call (a tiled
// GEMM for embedding-table models), then reduces each score row to its
// top-K with a bounded min-heap. Replaces the per-user
// score_items + full-sort loop as the shared ranking core for the
// evaluator, the serving gateway's batch path, and the ranking
// microbenchmark.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "eval/recommender.hpp"

namespace ckat::eval {

struct RankerConfig {
  std::size_t k = 20;
  /// Users scored per score_batch call. 0 = read CKAT_EVAL_BLOCK
  /// (default 64). Larger blocks amortize the item-table memory traffic
  /// across more users; smaller blocks shrink the score buffer.
  std::size_t block_size = 0;
  /// Worker threads for the user loop. 0 = read CKAT_EVAL_THREADS
  /// (default 1). Threads > 1 requires the model's score_batch /
  /// score_items to be safe for concurrent const calls —
  /// serve::ResilientRecommender is NOT (see resilient.hpp), which is
  /// why the default stays serial.
  int threads = 0;
  /// Optional hook observed once per score_batch block with the
  /// scoring wall time and the number of users in the block (the
  /// evaluator feeds it into the eval-scoring latency histogram). Must
  /// be thread-safe when threads > 1.
  std::function<void(double seconds, std::size_t block_users)>
      score_observer;
};

/// Resolves the worker-thread count: `requested` when positive,
/// otherwise CKAT_EVAL_THREADS, otherwise 1. Clamped to [1, 64].
int resolve_eval_threads(int requested);

/// Resolves the block size: `requested` when positive, otherwise
/// CKAT_EVAL_BLOCK, otherwise 64. Clamped to [1, 4096].
std::size_t resolve_eval_block(std::size_t requested);

class BatchRanker {
 public:
  /// Applied to a user's raw score row before the top-K reduction
  /// (candidate-set and train-item masking write -inf here).
  using MaskFn = std::function<void(std::uint32_t user, std::span<float> row)>;
  /// Receives each user's ranked top-K list. `slot` is the user's index
  /// in the `users` span passed to rank() — with threads > 1, visits
  /// arrive concurrently and out of order, but every slot is visited
  /// exactly once, so writing per-user results into a slot-indexed
  /// vector and reducing it afterwards in slot order is deterministic
  /// at any thread count. The `topk` span is only valid inside the
  /// call.
  using VisitFn = std::function<void(std::size_t slot, std::uint32_t user,
                                     std::span<const std::uint32_t> topk)>;

  /// Keeps a reference to `model`; the model must outlive the ranker.
  /// Zero config fields are resolved from the environment here, once,
  /// so one ranker ranks consistently even if the env changes later.
  BatchRanker(const Recommender& model, RankerConfig config);

  /// Ranks every user in `users` (duplicates allowed): partitions the
  /// span into contiguous per-thread shards, scores each shard in
  /// blocks of block_size, masks, reduces to top-K, and calls `visit`.
  /// `mask` may be empty (no masking). Exceptions thrown by the model,
  /// mask, or visit on any thread are rethrown on the caller.
  void rank(std::span<const std::uint32_t> users, const MaskFn& mask,
            const VisitFn& visit) const;

  /// Convenience wrapper: returns the ranked top-K lists slot-aligned
  /// with `users`.
  [[nodiscard]] std::vector<std::vector<std::uint32_t>> top_k(
      std::span<const std::uint32_t> users, const MaskFn& mask = {}) const;

  [[nodiscard]] const RankerConfig& config() const noexcept {
    return config_;
  }

 private:
  void rank_range(std::span<const std::uint32_t> users, std::size_t slot0,
                  const MaskFn& mask, const VisitFn& visit) const;

  const Recommender& model_;
  RankerConfig config_;
};

}  // namespace ckat::eval
