#include "eval/ranker.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "eval/metrics.hpp"
#include "obs/trace.hpp"
#include "util/env.hpp"
#include "util/timer.hpp"

namespace ckat::eval {

int resolve_eval_threads(int requested) {
  if (requested > 0) return std::min(requested, 64);
  return static_cast<int>(util::env_int("CKAT_EVAL_THREADS", 1, 1, 64));
}

std::size_t resolve_eval_block(std::size_t requested) {
  if (requested > 0) return std::min<std::size_t>(requested, 4096);
  return static_cast<std::size_t>(
      util::env_int("CKAT_EVAL_BLOCK", 64, 1, 4096));
}

BatchRanker::BatchRanker(const Recommender& model, RankerConfig config)
    : model_(model), config_(std::move(config)) {
  config_.threads = resolve_eval_threads(config_.threads);
  config_.block_size = resolve_eval_block(config_.block_size);
}

void BatchRanker::rank_range(std::span<const std::uint32_t> users,
                             std::size_t slot0, const MaskFn& mask,
                             const VisitFn& visit) const {
  const std::size_t n_items = model_.n_items();
  const std::size_t block = std::min(config_.block_size, users.size());
  // One score buffer and one top-K vector per shard, reused across
  // blocks: the hot loop allocates nothing per user.
  std::vector<float> scores(block * n_items);
  std::vector<std::uint32_t> topk;
  topk.reserve(config_.k);
  for (std::size_t b0 = 0; b0 < users.size(); b0 += block) {
    const std::size_t bn = std::min(block, users.size() - b0);
    const auto chunk = users.subspan(b0, bn);
    const auto block_scores = std::span<float>(scores).first(bn * n_items);
    util::Timer score_timer;
    model_.score_batch(chunk, block_scores);
    if (config_.score_observer) {
      config_.score_observer(score_timer.seconds(), bn);
    }
    for (std::size_t i = 0; i < bn; ++i) {
      const auto row = block_scores.subspan(i * n_items, n_items);
      if (mask) mask(chunk[i], row);
      top_k_row(row, config_.k, topk);
      visit(slot0 + b0 + i, chunk[i], topk);
    }
  }
}

void BatchRanker::rank(std::span<const std::uint32_t> users,
                       const MaskFn& mask, const VisitFn& visit) const {
  if (!visit) {
    throw std::invalid_argument("BatchRanker::rank: visit must be callable");
  }
  if (users.empty()) return;
  const auto n_threads =
      std::min(static_cast<std::size_t>(config_.threads), users.size());
  if (n_threads <= 1) {
    rank_range(users, 0, mask, visit);
    return;
  }
  // Contiguous shards under std::thread rather than an OpenMP team:
  // the TSan CI job covers this code, and libgomp's barriers are not
  // TSan-instrumented (false positives), while std::thread join gives
  // a clean happens-before edge. See DESIGN.md §11.
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> workers;
  workers.reserve(n_threads);
  const std::size_t base = users.size() / n_threads;
  const std::size_t extra = users.size() % n_threads;
  // Capture the caller's trace lineage before fanning out so each
  // shard's span joins the caller's per-request tree instead of
  // rooting a disconnected trace on its own thread.
  const obs::TraceContext trace_ctx = obs::current_trace_context();
  std::size_t start = 0;
  for (std::size_t t = 0; t < n_threads; ++t) {
    const std::size_t len = base + (t < extra ? 1 : 0);
    workers.emplace_back([this, shard = users.subspan(start, len), start, t,
                          trace_ctx, &mask, &visit, &first_error,
                          &error_mutex] {
      obs::TraceSpan shard_span("ranker.shard", trace_ctx,
                                {{"shard", std::to_string(t)},
                                 {"users", std::to_string(shard.size())}});
      try {
        rank_range(shard, start, mask, visit);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
    start += len;
  }
  for (auto& worker : workers) worker.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<std::vector<std::uint32_t>> BatchRanker::top_k(
    std::span<const std::uint32_t> users, const MaskFn& mask) const {
  std::vector<std::vector<std::uint32_t>> result(users.size());
  rank(users, mask,
       [&result](std::size_t slot, std::uint32_t /*user*/,
                 std::span<const std::uint32_t> topk) {
         result[slot].assign(topk.begin(), topk.end());
       });
  return result;
}

}  // namespace ckat::eval
