#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace ckat::eval {

void TopKMetrics::finalize() {
  if (n_users == 0) return;
  const double n = static_cast<double>(n_users);
  recall /= n;
  ndcg /= n;
  precision /= n;
  hit_rate /= n;
}

TopKMetrics& TopKMetrics::operator+=(const TopKMetrics& other) {
  recall += other.recall;
  ndcg += other.ndcg;
  precision += other.precision;
  hit_rate += other.hit_rate;
  n_users += other.n_users;
  return *this;
}

double ideal_dcg(std::size_t n_relevant, std::size_t k) {
  const std::size_t n = std::min(n_relevant, k);
  double idcg = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg;
}

TopKMetrics user_topk_metrics(std::span<const std::uint32_t> ranked_topk,
                              std::span<const std::uint32_t> relevant) {
  TopKMetrics m;
  m.n_users = 1;
  if (relevant.empty()) return m;

  std::size_t hits = 0;
  double dcg = 0.0;
  for (std::size_t pos = 0; pos < ranked_topk.size(); ++pos) {
    if (std::binary_search(relevant.begin(), relevant.end(),
                           ranked_topk[pos])) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  m.recall = static_cast<double>(hits) / static_cast<double>(relevant.size());
  m.precision = ranked_topk.empty()
                    ? 0.0
                    : static_cast<double>(hits) /
                          static_cast<double>(ranked_topk.size());
  m.hit_rate = hits > 0 ? 1.0 : 0.0;
  const double idcg = ideal_dcg(relevant.size(), ranked_topk.size());
  m.ndcg = idcg > 0.0 ? dcg / idcg : 0.0;
  return m;
}

std::vector<std::uint32_t> top_k_indices(std::span<const float> scores,
                                         std::size_t k) {
  k = std::min(k, scores.size());
  std::vector<std::uint32_t> idx(scores.size());
  std::iota(idx.begin(), idx.end(), 0u);
  auto better = [&](std::uint32_t a, std::uint32_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), better);
  idx.resize(k);
  // Drop -inf entries (items masked out by the evaluator).
  while (!idx.empty() &&
         scores[idx.back()] == -std::numeric_limits<float>::infinity()) {
    idx.pop_back();
  }
  return idx;
}

}  // namespace ckat::eval
