#include "eval/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ckat::eval {

namespace {

/// Rankable = a score the comparator can order without UB and that the
/// evaluator semantics allow to be recommended: NaN is comparator
/// poison (it breaks strict weak ordering, so a masked -inf could
/// "escape" into the middle of the list) and -inf is the evaluator's
/// mask marker. Both are filtered explicitly instead of relying on
/// comparator behavior.
inline bool rankable(float score) noexcept {
  return !std::isnan(score) &&
         score != -std::numeric_limits<float>::infinity();
}

}  // namespace

void TopKMetrics::finalize() {
  if (n_users == 0) return;
  const double n = static_cast<double>(n_users);
  recall /= n;
  ndcg /= n;
  precision /= n;
  hit_rate /= n;
}

TopKMetrics& TopKMetrics::operator+=(const TopKMetrics& other) {
  recall += other.recall;
  ndcg += other.ndcg;
  precision += other.precision;
  hit_rate += other.hit_rate;
  n_users += other.n_users;
  return *this;
}

double ideal_dcg(std::size_t n_relevant, std::size_t k) {
  const std::size_t n = std::min(n_relevant, k);
  double idcg = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    idcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return idcg;
}

TopKMetrics user_topk_metrics(std::span<const std::uint32_t> ranked_topk,
                              std::span<const std::uint32_t> relevant,
                              std::size_t k, std::size_t n_candidates) {
  TopKMetrics m;
  m.n_users = 1;
  if (relevant.empty()) return m;

  const std::size_t effective_k = std::min(k, n_candidates);
  const std::size_t depth = std::min(ranked_topk.size(), effective_k);
  std::size_t hits = 0;
  double dcg = 0.0;
  for (std::size_t pos = 0; pos < depth; ++pos) {
    if (std::binary_search(relevant.begin(), relevant.end(),
                           ranked_topk[pos])) {
      ++hits;
      dcg += 1.0 / std::log2(static_cast<double>(pos) + 2.0);
    }
  }
  m.recall = static_cast<double>(hits) / static_cast<double>(relevant.size());
  m.precision = effective_k == 0
                    ? 0.0
                    : static_cast<double>(hits) /
                          static_cast<double>(effective_k);
  m.hit_rate = hits > 0 ? 1.0 : 0.0;
  const double idcg = ideal_dcg(relevant.size(), effective_k);
  m.ndcg = idcg > 0.0 ? dcg / idcg : 0.0;
  return m;
}

void top_k_row(std::span<const float> scores, std::size_t k,
               std::vector<std::uint32_t>& out) {
  out.clear();
  k = std::min(k, scores.size());
  if (k == 0) return;
  // better(a, b): a ranks strictly above b. NaN never reaches the
  // comparator (filtered at insertion), so this is a strict weak order.
  const auto better = [&scores](std::uint32_t a, std::uint32_t b) noexcept {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  };
  // Bounded min-heap: `out` holds the best <= k ids seen so far as a
  // heap whose top is the WORST kept entry, so each remaining item
  // costs one comparison against the current cutoff.
  const auto n = static_cast<std::uint32_t>(scores.size());
  std::uint32_t i = 0;
  // Fill phase: exact heap insertion until k rankable entries exist
  // (or the row is exhausted — fewer than k rankable scores).
  for (; i < n && out.size() < k; ++i) {
    if (!rankable(scores[i])) continue;
    out.push_back(i);
    std::push_heap(out.begin(), out.end(), better);
  }
  const auto replace_if_better = [&](std::uint32_t id) {
    if (!rankable(scores[id])) return;
    if (better(id, out.front())) {
      std::pop_heap(out.begin(), out.end(), better);
      out.back() = id;
      std::push_heap(out.begin(), out.end(), better);
    }
  };
#if defined(__SSE2__)
  // Skip-scan: almost every remaining item loses to the cutoff, so
  // test 8 at a time against it and fall back to the exact insertion
  // logic only for blocks that contain a potential winner. cmpge is
  // ordered (NaN compares false, matching the rankable() filter) and
  // `>= cutoff` is a superset of better(i, front) — ties with larger
  // index pass the vector test and are then rejected scalar — so the
  // selected set is identical to the plain loop's.
  if (out.size() == k) {
    while (i + 8 <= n) {
      const __m128 cutoff = _mm_set1_ps(scores[out.front()]);
      const __m128 ge_lo =
          _mm_cmpge_ps(_mm_loadu_ps(scores.data() + i), cutoff);
      const __m128 ge_hi =
          _mm_cmpge_ps(_mm_loadu_ps(scores.data() + i + 4), cutoff);
      if (_mm_movemask_ps(_mm_or_ps(ge_lo, ge_hi)) == 0) {
        i += 8;
        continue;
      }
      for (const std::uint32_t end = i + 8; i < end; ++i) {
        replace_if_better(i);
      }
    }
  }
#endif
  for (; i < n; ++i) replace_if_better(i);
  std::sort(out.begin(), out.end(), better);
}

std::vector<std::uint32_t> top_k_indices(std::span<const float> scores,
                                         std::size_t k) {
  std::vector<std::uint32_t> out;
  top_k_row(scores, k, out);
  return out;
}

}  // namespace ckat::eval
