#include "eval/grid_search.hpp"

#include <stdexcept>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ckat::eval {

std::vector<GridPoint> paper_grid() {
  std::vector<GridPoint> grid;
  for (float lr : {0.05f, 0.01f, 0.005f}) {
    for (float l2 : {1e-5f, 1e-4f, 1e-3f}) {
      for (float dropout : {0.0f, 0.1f, 0.3f}) {
        grid.push_back(GridPoint{lr, l2, dropout});
      }
    }
  }
  return grid;
}

GridSearchResult grid_search(const ModelFactory& factory,
                             const graph::InteractionSet& train,
                             const std::vector<GridPoint>& grid,
                             const GridSearchConfig& config) {
  if (grid.empty()) {
    throw std::invalid_argument("grid_search: empty grid");
  }
  if (!factory) {
    throw std::invalid_argument("grid_search: null factory");
  }

  // Carve a validation split out of the training interactions (the
  // held-out test set must never influence hyperparameters).
  util::Rng rng(config.seed);
  const graph::InteractionSplit validation_split =
      graph::split_interactions(train, config.validation_fraction, rng);

  GridSearchResult result;
  bool first = true;
  for (const GridPoint& point : grid) {
    auto model = factory(point, validation_split.train);
    model->fit();
    const TopKMetrics metrics =
        evaluate_topk(*model, validation_split, EvalConfig{.k = config.k});
    CKAT_LOG_INFO(
        "grid point lr=%.4f l2=%g dropout=%.2f -> recall@%zu=%.4f",
        point.learning_rate, point.l2_coefficient, point.dropout, config.k,
        metrics.recall);
    result.trials.push_back({point, metrics});
    if (first || metrics.recall > result.best_metrics.recall) {
      result.best = point;
      result.best_metrics = metrics;
      first = false;
    }
  }
  return result;
}

}  // namespace ckat::eval
