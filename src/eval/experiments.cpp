#include "eval/experiments.hpp"

#include <memory>
#include <stdexcept>

#include "baselines/bprmf.hpp"
#include "baselines/cfkg.hpp"
#include "baselines/cke.hpp"
#include "baselines/fm.hpp"
#include "baselines/kgcn.hpp"
#include "baselines/ripplenet.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::eval {

const std::vector<std::string>& all_model_names() {
  static const std::vector<std::string> names = {
      "BPRMF", "FM", "NFM", "CKE", "CFKG", "RippleNet", "KGCN", "CKAT"};
  return names;
}

core::CkatConfig default_ckat_config(std::size_t n_items) {
  core::CkatConfig config;
  if (n_items > 1500) {
    config.cf_batch_size = 1024;
    config.epochs = 30;
  } else {
    config.cf_batch_size = 2048;
    config.epochs = 25;
  }
  return config;
}

namespace {

std::unique_ptr<Recommender> build_model(const std::string& name,
                                         const graph::CollaborativeKg& ckg,
                                         const graph::InteractionSet& train,
                                         std::uint64_t seed) {
  if (name == "BPRMF") {
    baselines::BprmfConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<baselines::BprmfModel>(train, config);
  }
  if (name == "FM" || name == "NFM") {
    baselines::FmConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    if (name == "FM") {
      return std::make_unique<baselines::PlainFmModel>(ckg, train, config);
    }
    return std::make_unique<baselines::NfmModel>(ckg, train, config);
  }
  if (name == "CKE") {
    baselines::CkeConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<baselines::CkeModel>(ckg, train, config);
  }
  if (name == "CFKG") {
    baselines::CfkgConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<baselines::CfkgModel>(ckg, train, config);
  }
  if (name == "RippleNet") {
    baselines::RippleNetConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<baselines::RippleNetModel>(ckg, train, config);
  }
  if (name == "KGCN") {
    baselines::KgcnConfig config;
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<baselines::KgcnModel>(ckg, train, config);
  }
  if (name == "CKAT") {
    core::CkatConfig config = default_ckat_config(ckg.n_items());
    config.seed = seed;
    config.epochs = util::scaled_epochs(config.epochs);
    return std::make_unique<core::CkatModel>(ckg, train, config);
  }
  throw std::invalid_argument("run_model: unknown model '" + name + "'");
}

ModelResult fit_and_evaluate(Recommender& model,
                             const graph::InteractionSplit& split,
                             std::size_t k) {
  ModelResult result;
  result.model = model.name();
  util::Timer timer;
  model.fit();
  result.fit_seconds = timer.seconds();
  timer.reset();
  result.metrics = evaluate_topk(model, split, EvalConfig{.k = k});
  result.eval_seconds = timer.seconds();
  CKAT_LOG_INFO("%-10s recall@%zu=%.4f ndcg@%zu=%.4f (fit %s, eval %s)",
                result.model.c_str(), k, result.metrics.recall, k,
                result.metrics.ndcg,
                util::format_duration(result.fit_seconds).c_str(),
                util::format_duration(result.eval_seconds).c_str());
  return result;
}

}  // namespace

ModelResult run_model(const std::string& name,
                      const graph::CollaborativeKg& ckg,
                      const graph::InteractionSplit& split, std::uint64_t seed,
                      std::size_t k) {
  auto model = build_model(name, ckg, split.train, seed);
  return fit_and_evaluate(*model, split, k);
}

ModelResult run_ckat(core::CkatConfig config,
                     const graph::CollaborativeKg& ckg,
                     const graph::InteractionSplit& split, std::size_t k) {
  config.epochs = util::scaled_epochs(config.epochs);
  core::CkatModel model(ckg, split.train, config);
  return fit_and_evaluate(model, split, k);
}

}  // namespace ckat::eval
