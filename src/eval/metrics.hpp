// Top-K ranking metrics (Sec. VI.B): recall@K and ndcg@K, plus
// precision@K and hit-rate@K for completeness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ckat::eval {

struct TopKMetrics {
  double recall = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
  double hit_rate = 0.0;
  std::size_t n_users = 0;  // users with at least one test item

  /// Averages accumulated sums over n_users (no-op when n_users == 0).
  void finalize();

  TopKMetrics& operator+=(const TopKMetrics& other);
};

/// Metrics for one user given the ranked top-K item list and the set of
/// ground-truth (test) items. `relevant` must be sorted ascending.
TopKMetrics user_topk_metrics(std::span<const std::uint32_t> ranked_topk,
                              std::span<const std::uint32_t> relevant);

/// Returns the indices of the K largest scores, ties broken by lower
/// index (deterministic). Items with score -inf are never returned.
std::vector<std::uint32_t> top_k_indices(std::span<const float> scores,
                                         std::size_t k);

/// Ideal DCG for n relevant items at cutoff K.
double ideal_dcg(std::size_t n_relevant, std::size_t k);

}  // namespace ckat::eval
