// Top-K ranking metrics (Sec. VI.B): recall@K and ndcg@K, plus
// precision@K and hit-rate@K for completeness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ckat::eval {

struct TopKMetrics {
  double recall = 0.0;
  double ndcg = 0.0;
  double precision = 0.0;
  double hit_rate = 0.0;
  std::size_t n_users = 0;  // users with at least one test item

  /// Averages accumulated sums over n_users (no-op when n_users == 0).
  void finalize();

  TopKMetrics& operator+=(const TopKMetrics& other);
};

/// Metrics for one user. `ranked_topk` is the ranked recommendation list
/// (at most min(k, n_candidates) entries — shorter only when the model
/// scored candidates as unrankable, see top_k_indices). `relevant` must
/// be sorted ascending.
///
/// @k semantics: the precision denominator and the ideal-DCG cutoff are
/// min(k, n_candidates), where n_candidates is the number of items the
/// masking protocol left rankable for this user — NOT the length of
/// ranked_topk. A user whose candidate set is smaller than k is judged
/// against what was reachable, but a model that wastes candidate slots
/// on unrankable scores (NaN from a degraded tier) still pays the full
/// denominator instead of getting precision inflated by its own
/// shrunken list.
TopKMetrics user_topk_metrics(std::span<const std::uint32_t> ranked_topk,
                              std::span<const std::uint32_t> relevant,
                              std::size_t k, std::size_t n_candidates);

/// Returns the indices of the K largest scores, ties broken by lower
/// index (deterministic). Unrankable entries — score -inf (masked items)
/// or NaN (corrupted models) — are never returned, so the result has
/// min(k, #rankable) entries. +inf is a legitimate "infinitely good"
/// score and ranks first.
std::vector<std::uint32_t> top_k_indices(std::span<const float> scores,
                                         std::size_t k);

/// Allocation-free core of top_k_indices: reduces one score row to its
/// top k with a bounded min-heap (no n-sized index vector, no full
/// sort), writing the ranked ids into `out` (cleared first; its capacity
/// is reused across calls — the batched ranking engine calls this once
/// per user per block). Same ordering and unrankable-score contract as
/// top_k_indices.
void top_k_row(std::span<const float> scores, std::size_t k,
               std::vector<std::uint32_t>& out);

/// Ideal DCG for n relevant items at cutoff K.
double ideal_dcg(std::size_t n_relevant, std::size_t k);

}  // namespace ckat::eval
