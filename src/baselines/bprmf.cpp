#include "baselines/bprmf.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/tape.hpp"

namespace ckat::baselines {

BprmfModel::BprmfModel(const graph::InteractionSet& train, BprmfConfig config)
    : train_(train), config_(config), rng_(config.seed) {
  util::Rng init_rng = rng_.fork(0);
  user_factors_ =
      &params_.create("bprmf.user", train.n_users(), config_.embedding_dim);
  item_factors_ =
      &params_.create("bprmf.item", train.n_items(), config_.embedding_dim);
  nn::xavier_uniform(user_factors_->value(), init_rng);
  nn::xavier_uniform(item_factors_->value(), init_rng);
  optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<core::BprSampler>(train_);
}

float BprmfModel::train_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.batch_size, rng);
  std::vector<std::uint32_t> users, positives, negatives;
  users.reserve(batch.size());
  positives.reserve(batch.size());
  negatives.reserve(batch.size());
  for (const core::BprTriple& t : batch) {
    users.push_back(t.user);
    positives.push_back(t.positive);
    negatives.push_back(t.negative);
  }

  nn::Tape tape;
  nn::Var u = tape.gather_param(*user_factors_, users);
  nn::Var p = tape.gather_param(*item_factors_, positives);
  nn::Var n = tape.gather_param(*item_factors_, negatives);

  nn::Var pos_scores = tape.sum_cols(tape.mul(u, p));
  nn::Var neg_scores = tape.sum_cols(tape.mul(u, n));
  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));
  nn::Var reg = tape.reduce_sum(
      tape.add(tape.add(tape.square(u), tape.square(p)), tape.square(n)));
  nn::Var loss = tape.add(
      bpr, tape.scale(reg, config_.l2_coefficient /
                               static_cast<float>(batch.size())));
  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  optimizer_->step(params_);
  return loss_value;
}

void BprmfModel::fit() {
  const std::size_t batches = sampler_->batches_per_epoch(config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < batches; ++b) train_step(rng_);
  }
  fitted_ = true;
}

void BprmfModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) throw std::logic_error("BprmfModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("BprmfModel: output span size mismatch");
  }
  auto u = user_factors_->value().row(user);
  for (std::size_t v = 0; v < n_items(); ++v) {
    auto q = item_factors_->value().row(v);
    float acc = 0.0f;
    for (std::size_t c = 0; c < u.size(); ++c) acc += u[c] * q[c];
    out[v] = acc;
  }
}

void BprmfModel::score_batch(std::span<const std::uint32_t> users,
                             std::span<float> out) const {
  if (!fitted_) throw std::logic_error("BprmfModel: fit() first");
  if (out.size() != users.size() * n_items()) {
    throw std::invalid_argument("BprmfModel: output span size mismatch");
  }
  const nn::Tensor& user_table = user_factors_->value();
  const nn::Tensor& item_table = item_factors_->value();
  const std::size_t dim = user_table.cols();
  std::vector<float> user_block(users.size() * dim);
  for (std::size_t i = 0; i < users.size(); ++i) {
    const auto user_row = user_table.row(users[i]);
    std::copy(user_row.begin(), user_row.end(),
              user_block.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  const std::span<const float> item_panel{item_table.data(),
                                          n_items() * dim};
  nn::gemm_nt_into(user_block, users.size(), dim, item_panel, n_items(), out);
}

}  // namespace ckat::baselines
