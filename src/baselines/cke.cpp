#include "baselines/cke.hpp"

#include <stdexcept>

#include "graph/adjacency.hpp"
#include "nn/init.hpp"
#include "nn/tape.hpp"

namespace ckat::baselines {

CkeModel::CkeModel(const graph::CollaborativeKg& ckg,
                   const graph::InteractionSet& train, CkeConfig config)
    : ckg_(ckg), train_(train), config_(config), rng_(config.seed) {
  util::Rng init_rng = rng_.fork(0);
  user_factors_ =
      &params_.create("cke.user", train.n_users(), config_.embedding_dim);
  item_factors_ =
      &params_.create("cke.item", train.n_items(), config_.embedding_dim);
  nn::xavier_uniform(user_factors_->value(), init_rng);
  nn::xavier_uniform(item_factors_->value(), init_rng);

  // TransR runs over the knowledge triples only (the CF part carries the
  // interactions) -- the regularization-based design.
  const graph::Adjacency kg_adjacency(ckg.knowledge_triples(),
                                      ckg.n_entities(), ckg.n_relations(),
                                      /*add_inverse=*/true);
  core::TransRConfig transr_config{.entity_dim = config_.embedding_dim,
                                   .relation_dim = config_.embedding_dim,
                                   .margin = config_.transr_margin};
  transr_ = std::make_unique<core::TransR>(params_, ckg.n_entities(),
                                           kg_adjacency.n_relations(),
                                           transr_config, init_rng);
  kg_edges_.reserve(kg_adjacency.n_edges());
  for (std::size_t e = 0; e < kg_adjacency.n_edges(); ++e) {
    kg_edges_.push_back(core::KgEdge{kg_adjacency.heads()[e],
                                     kg_adjacency.relations()[e],
                                     kg_adjacency.tails()[e]});
  }

  cf_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  kg_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<core::BprSampler>(train_);
}

float CkeModel::cf_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.batch_size, rng);
  std::vector<std::uint32_t> users, pos_items, neg_items, pos_entities,
      neg_entities;
  for (const core::BprTriple& t : batch) {
    users.push_back(t.user);
    pos_items.push_back(t.positive);
    neg_items.push_back(t.negative);
    pos_entities.push_back(ckg_.item_entity(t.positive));
    neg_entities.push_back(ckg_.item_entity(t.negative));
  }

  nn::Tape tape;
  nn::Var u = tape.gather_param(*user_factors_, users);
  // Item representation: latent factor + structural TransR embedding.
  nn::Var p = tape.add(tape.gather_param(*item_factors_, pos_items),
                       tape.gather_param(transr_->entity_embedding(),
                                         pos_entities));
  nn::Var n = tape.add(tape.gather_param(*item_factors_, neg_items),
                       tape.gather_param(transr_->entity_embedding(),
                                         neg_entities));

  nn::Var pos_scores = tape.sum_cols(tape.mul(u, p));
  nn::Var neg_scores = tape.sum_cols(tape.mul(u, n));
  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));
  nn::Var reg = tape.reduce_sum(
      tape.add(tape.add(tape.square(u), tape.square(p)), tape.square(n)));
  nn::Var loss = tape.add(
      bpr, tape.scale(reg, config_.l2_coefficient /
                               static_cast<float>(batch.size())));
  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  cf_optimizer_->step(params_);
  return loss_value;
}

void CkeModel::fit() {
  const std::size_t cf_batches =
      sampler_->batches_per_epoch(config_.batch_size);
  const std::size_t kg_batches = std::max<std::size_t>(
      1, (kg_edges_.size() + config_.kg_batch_size - 1) / config_.kg_batch_size);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < cf_batches; ++b) cf_step(rng_);
    for (std::size_t b = 0; b < kg_batches; ++b) {
      std::vector<core::KgEdge> kg_batch;
      const std::size_t size =
          std::min(config_.kg_batch_size, kg_edges_.size());
      kg_batch.reserve(size);
      for (std::size_t i = 0; i < size; ++i) {
        kg_batch.push_back(kg_edges_[rng_.uniform_index(kg_edges_.size())]);
      }
      transr_->train_step(kg_batch, *kg_optimizer_, params_, rng_);
    }
  }
  fitted_ = true;
}

void CkeModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) throw std::logic_error("CkeModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("CkeModel: output span size mismatch");
  }
  auto pu = user_factors_->value().row(user);
  const nn::Tensor& q = item_factors_->value();
  const nn::Tensor& e = transr_->entity_embedding().value();
  for (std::size_t v = 0; v < n_items(); ++v) {
    auto qi = q.row(v);
    auto ei = e.row(ckg_.item_entity(static_cast<std::uint32_t>(v)));
    float acc = 0.0f;
    for (std::size_t c = 0; c < pu.size(); ++c) {
      acc += pu[c] * (qi[c] + ei[c]);
    }
    out[v] = acc;
  }
}

}  // namespace ckat::baselines
