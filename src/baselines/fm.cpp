#include "baselines/fm.hpp"

#include <stdexcept>

#include "nn/init.hpp"

namespace ckat::baselines {

FmModel::FmModel(const graph::CollaborativeKg& ckg,
                 const graph::InteractionSet& train, FmConfig config,
                 bool neural)
    : ckg_(ckg),
      train_(train),
      config_(config),
      neural_(neural),
      rng_(config.seed) {
  item_attributes_ = item_attribute_entities(ckg);

  util::Rng init_rng = rng_.fork(0);
  factors_ =
      &params_.create("fm.V", ckg.n_entities(), config_.embedding_dim);
  linear_ = &params_.create("fm.w", ckg.n_entities(), 1);
  nn::xavier_uniform(factors_->value(), init_rng);
  // Linear weights start at zero; BPR shapes them from the data.
  if (neural_) {
    hidden_w_ = &params_.create("nfm.W1", config_.embedding_dim,
                                config_.hidden_dim);
    hidden_b_ = &params_.create("nfm.b1", 1, config_.hidden_dim);
    output_w_ = &params_.create("nfm.h", config_.hidden_dim, 1);
    nn::xavier_uniform(hidden_w_->value(), init_rng);
    nn::xavier_uniform(output_w_->value(), init_rng);
  }
  optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<core::BprSampler>(train_);
}

nn::Var FmModel::score_batch(nn::Tape& tape, const FeatureBatch& features,
                             bool training, util::Rng& dropout_rng) {
  const std::size_t batch = features.n_samples;

  nn::Var gathered = tape.gather_param(*factors_, features.flat);
  nn::Var sum_vectors = tape.segment_sum(gathered, features.segments, batch);
  nn::Var sum_of_squares =
      tape.segment_sum(tape.square(gathered), features.segments, batch);
  // Bi-interaction pooling: 0.5 * ((sum v)^2 - sum v^2), elementwise.
  nn::Var bi = tape.scale(
      tape.sub(tape.square(sum_vectors), sum_of_squares), 0.5f);

  nn::Var linear_terms = tape.segment_sum(
      tape.gather_param(*linear_, features.flat), features.segments, batch);

  if (!neural_) {
    // FM head: pairwise interactions reduce to a scalar per sample.
    return tape.add(tape.sum_cols(bi), linear_terms);
  }
  // NFM head: one hidden layer over the bi-interaction vector.
  bi = tape.dropout(bi, config_.dropout, dropout_rng, training);
  nn::Var hidden = tape.relu(tape.add_rowvec(
      tape.matmul(bi, tape.param(*hidden_w_)), tape.param(*hidden_b_)));
  return tape.add(tape.matmul(hidden, tape.param(*output_w_)), linear_terms);
}

float FmModel::train_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.batch_size, rng);
  std::vector<std::uint32_t> users, positives, negatives;
  users.reserve(batch.size());
  positives.reserve(batch.size());
  negatives.reserve(batch.size());
  for (const core::BprTriple& t : batch) {
    users.push_back(t.user);
    positives.push_back(t.positive);
    negatives.push_back(t.negative);
  }

  const FeatureBatch pos_features =
      build_feature_batch(ckg_, item_attributes_, users, positives);
  const FeatureBatch neg_features =
      build_feature_batch(ckg_, item_attributes_, users, negatives);

  nn::Tape tape;
  util::Rng dropout_rng = rng.fork(23);
  nn::Var pos_scores = score_batch(tape, pos_features, true, dropout_rng);
  nn::Var neg_scores = score_batch(tape, neg_features, true, dropout_rng);

  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));
  // L2 over the embedding table rows used this step (touched rows only,
  // approximated through the gathered representations).
  nn::Var reg = tape.reduce_sum(
      tape.square(tape.gather_param(*factors_, pos_features.flat)));
  nn::Var loss = tape.add(
      bpr, tape.scale(reg, config_.l2_coefficient /
                               static_cast<float>(batch.size())));
  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  optimizer_->step(params_);
  return loss_value;
}

void FmModel::fit() {
  const std::size_t batches = sampler_->batches_per_epoch(config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < batches; ++b) train_step(rng_);
  }
  cache_item_sums();
  fitted_ = true;
}

void FmModel::cache_item_sums() {
  // Decompose the bi-interaction for (user u, item i's feature set F_i):
  //   bi_c = 0.5 * ((vu + s_i)^2 - (vu^2 + ssq_i))_c
  //        = [0.5 * (s_i^2 - ssq_i)]_c + (vu .* s_i)_c
  // where s_i / ssq_i are the (squared-)factor sums over F_i = {item,
  // attrs}. The bracketed item-only part and the linear sums are
  // precomputed here, leaving a single GEMM per scored user.
  const nn::Tensor& v = factors_->value();
  const nn::Tensor& w = linear_->value();
  const std::size_t d = config_.embedding_dim;
  item_sum_.resize_zeroed(n_items(), d);
  item_bi_.resize_zeroed(n_items(), d);
  item_linear_.assign(n_items(), 0.0f);

  for (std::size_t item = 0; item < n_items(); ++item) {
    auto sum = item_sum_.row(item);
    auto bi = item_bi_.row(item);
    float linear_acc = 0.0f;
    auto accumulate = [&](std::uint32_t entity) {
      auto row = v.row(entity);
      for (std::size_t c = 0; c < d; ++c) {
        sum[c] += row[c];
        bi[c] -= row[c] * row[c];  // accumulates -ssq for now
      }
      linear_acc += w(entity, 0);
    };
    accumulate(ckg_.item_entity(static_cast<std::uint32_t>(item)));
    for (std::uint32_t attr : item_attributes_[item]) accumulate(attr);
    for (std::size_t c = 0; c < d; ++c) {
      bi[c] = 0.5f * (sum[c] * sum[c] + bi[c]);
    }
    item_linear_[item] = linear_acc;
  }
}

void FmModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) throw std::logic_error("FmModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("FmModel: output span size mismatch");
  }
  const nn::Tensor& v = factors_->value();
  const nn::Tensor& w = linear_->value();
  const std::size_t d = config_.embedding_dim;
  auto vu = v.row(ckg_.user_entity(user));
  const float user_linear = w(ckg_.user_entity(user), 0);

  if (!neural_) {
    for (std::size_t item = 0; item < n_items(); ++item) {
      auto sum = item_sum_.row(item);
      auto bi = item_bi_.row(item);
      float acc = user_linear + item_linear_[item];
      for (std::size_t c = 0; c < d; ++c) {
        acc += bi[c] + vu[c] * sum[c];
      }
      out[item] = acc;
    }
    return;
  }

  // NFM: assemble the full bi-interaction matrix for this user, then one
  // GEMM through the hidden layer.
  nn::Tensor bi_matrix(n_items(), d);
  for (std::size_t item = 0; item < n_items(); ++item) {
    auto sum = item_sum_.row(item);
    auto bi = item_bi_.row(item);
    auto dst = bi_matrix.row(item);
    for (std::size_t c = 0; c < d; ++c) {
      dst[c] = bi[c] + vu[c] * sum[c];
    }
  }
  nn::Tensor hidden(n_items(), config_.hidden_dim);
  nn::gemm(bi_matrix, hidden_w_->value(), hidden);
  const nn::Tensor& b1 = hidden_b_->value();
  const nn::Tensor& h = output_w_->value();
  for (std::size_t item = 0; item < n_items(); ++item) {
    auto row = hidden.row(item);
    float score = user_linear + item_linear_[item];
    for (std::size_t j = 0; j < config_.hidden_dim; ++j) {
      const float pre = row[j] + b1(0, j);
      if (pre > 0.0f) score += pre * h(j, 0);
    }
    out[item] = score;
  }
}

}  // namespace ckat::baselines
