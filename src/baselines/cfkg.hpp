// CFKG (Ai et al. 2018): TransE over the unified graph of user
// behaviors and item knowledge. Users, items and attributes share one
// entity space; "interact" is just another relation. Recommendation
// scores rank items by the negated translation distance
// -||e_u + r_interact - e_v||^2.
#pragma once

#include <memory>

#include "core/transr.hpp"
#include "eval/recommender.hpp"
#include "graph/adjacency.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct CfkgConfig {
  std::size_t embedding_dim = 64;
  float learning_rate = 0.01f;
  float margin = 1.0f;
  std::size_t batch_size = 4096;
  int epochs = 40;
  std::uint64_t seed = 7;
};

class CfkgModel final : public eval::Recommender {
 public:
  CfkgModel(const graph::CollaborativeKg& ckg,
            const graph::InteractionSet& train, CfkgConfig config);

  [[nodiscard]] std::string name() const override { return "CFKG"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  float train_step(util::Rng& rng);

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  CfkgConfig config_;

  graph::Adjacency adjacency_;  // full unified graph, inverses included
  nn::ParamStore params_;
  nn::Parameter* entity_ = nullptr;    // (n_entities, d)
  nn::Parameter* relation_ = nullptr;  // (n_relations_with_inverse, d)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  util::Rng rng_;
  bool fitted_ = false;
};

}  // namespace ckat::baselines
