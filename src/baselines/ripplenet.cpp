#include "baselines/ripplenet.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/kernels.hpp"

namespace ckat::baselines {

RippleNetModel::RippleNetModel(const graph::CollaborativeKg& ckg,
                               const graph::InteractionSet& train,
                               RippleNetConfig config)
    : ckg_(ckg), train_(train), config_(config), rng_(config.seed) {
  util::Rng ripple_rng = rng_.fork(1);
  ripples_ = build_ripple_sets(ckg, train, config_.n_hops,
                               config_.ripple_set_size, ripple_rng);
  n_relations_ = 2 * ckg.n_relations();  // canonical + inverse

  util::Rng init_rng = rng_.fork(0);
  entity_ = &params_.create("ripple.entity", ckg.n_entities(),
                            config_.embedding_dim);
  nn::xavier_uniform(entity_->value(), init_rng);
  relation_transforms_.reserve(n_relations_);
  for (std::size_t r = 0; r < n_relations_; ++r) {
    nn::Parameter& m = params_.create("ripple.R" + std::to_string(r),
                                      config_.embedding_dim,
                                      config_.embedding_dim);
    nn::xavier_uniform(m.value(), init_rng);
    relation_transforms_.push_back(&m);
  }
  optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<core::BprSampler>(train_);
}

nn::Var RippleNetModel::score_batch(nn::Tape& tape,
                                    std::span<const std::uint32_t> users,
                                    nn::Var item_embedding) {
  const std::size_t batch = users.size();
  const std::size_t set_size = config_.ripple_set_size;

  nn::Var user_response{};  // accumulates sum_k o_k, (B, d)
  for (std::size_t hop = 0; hop < config_.n_hops; ++hop) {
    // Flatten this hop's ripple entries across the batch.
    std::vector<std::uint32_t> heads, tails, segments, relations;
    heads.reserve(batch * set_size);
    for (std::size_t b = 0; b < batch; ++b) {
      const std::size_t base =
          (static_cast<std::size_t>(users[b]) * config_.n_hops + hop) *
          set_size;
      for (std::size_t j = 0; j < set_size; ++j) {
        heads.push_back(ripples_.heads[base + j]);
        relations.push_back(ripples_.relations[base + j]);
        tails.push_back(ripples_.tails[base + j]);
        segments.push_back(static_cast<std::uint32_t>(b));
      }
    }

    // Group entries by relation so R_r applies as one GEMM per group;
    // attention over each user's set is order-independent (segment ops).
    std::vector<std::size_t> order(heads.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return relations[a] < relations[b];
                     });

    nn::Var scores{};  // (E, 1) raw attention, in sorted order
    std::vector<std::uint32_t> sorted_segments, sorted_tails;
    sorted_segments.reserve(order.size());
    sorted_tails.reserve(order.size());
    std::size_t begin = 0;
    while (begin < order.size()) {
      const std::uint32_t r = relations[order[begin]];
      std::size_t end = begin;
      std::vector<std::uint32_t> group_heads, group_rows;
      while (end < order.size() && relations[order[end]] == r) {
        group_heads.push_back(heads[order[end]]);
        group_rows.push_back(segments[order[end]]);
        sorted_segments.push_back(segments[order[end]]);
        sorted_tails.push_back(tails[order[end]]);
        ++end;
      }
      // p_raw = (R_r e_h) . v, with v broadcast per batch row.
      nn::Var projected =
          tape.matmul(tape.gather_param(*entity_, group_heads),
                      tape.param(*relation_transforms_[r]));
      nn::Var item_rows = tape.rows(item_embedding, group_rows);
      nn::Var group_scores = tape.sum_cols(tape.mul(projected, item_rows));
      scores = scores.valid() ? tape.concat_rows(scores, group_scores)
                              : group_scores;
      begin = end;
    }

    nn::Var attention = tape.segment_softmax(scores, sorted_segments);
    nn::Var tail_embeddings = tape.gather_param(*entity_, sorted_tails);
    nn::Var hop_response = tape.segment_sum(
        tape.mul_colvec(tail_embeddings, attention), sorted_segments, batch);
    user_response = user_response.valid()
                        ? tape.add(user_response, hop_response)
                        : hop_response;
  }
  return tape.sum_cols(tape.mul(user_response, item_embedding));
}

float RippleNetModel::train_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.batch_size, rng);
  std::vector<std::uint32_t> users, pos_entities, neg_entities;
  for (const core::BprTriple& t : batch) {
    users.push_back(t.user);
    pos_entities.push_back(ckg_.item_entity(t.positive));
    neg_entities.push_back(ckg_.item_entity(t.negative));
  }

  nn::Tape tape;
  nn::Var v_pos = tape.gather_param(*entity_, pos_entities);
  nn::Var v_neg = tape.gather_param(*entity_, neg_entities);
  nn::Var pos_scores = score_batch(tape, users, v_pos);
  nn::Var neg_scores = score_batch(tape, users, v_neg);

  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));
  nn::Var reg =
      tape.reduce_sum(tape.add(tape.square(v_pos), tape.square(v_neg)));
  nn::Var loss = tape.add(
      bpr, tape.scale(reg, config_.l2_coefficient /
                               static_cast<float>(batch.size())));
  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  optimizer_->step(params_);
  return loss_value;
}

void RippleNetModel::fit() {
  const std::size_t batches = sampler_->batches_per_epoch(config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < batches; ++b) train_step(rng_);
  }
  fitted_ = true;
}

void RippleNetModel::score_items(std::uint32_t user,
                                 std::span<float> out) const {
  if (!fitted_) throw std::logic_error("RippleNetModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("RippleNetModel: output span size mismatch");
  }
  const std::size_t d = config_.embedding_dim;
  const std::size_t set_size = config_.ripple_set_size;
  const nn::Tensor& e = entity_->value();

  // Precompute this user's projected heads and tails per hop, then score
  // every item against them.
  const std::size_t total = config_.n_hops * set_size;
  nn::Tensor projected(total, d);
  nn::Tensor tails(total, d);
  for (std::size_t hop = 0; hop < config_.n_hops; ++hop) {
    const std::size_t base =
        (static_cast<std::size_t>(user) * config_.n_hops + hop) * set_size;
    for (std::size_t j = 0; j < set_size; ++j) {
      const std::size_t row = hop * set_size + j;
      const std::uint32_t h = ripples_.heads[base + j];
      const std::uint32_t r = ripples_.relations[base + j];
      const std::uint32_t t = ripples_.tails[base + j];
      const nn::Tensor& transform = relation_transforms_[r]->value();
      auto head_row = e.row(h);
      auto dst = projected.row(row);
      for (std::size_t c = 0; c < d; ++c) {
        float acc = 0.0f;
        for (std::size_t i = 0; i < d; ++i) {
          acc += head_row[i] * transform(i, c);
        }
        dst[c] = acc;
      }
      auto tail_row = e.row(t);
      std::copy(tail_row.begin(), tail_row.end(), tails.row(row).begin());
    }
  }

  std::vector<float> attention(set_size);
  std::vector<float> response(d);
  for (std::size_t item = 0; item < n_items(); ++item) {
    auto v = e.row(ckg_.item_entity(static_cast<std::uint32_t>(item)));
    std::fill(response.begin(), response.end(), 0.0f);
    for (std::size_t hop = 0; hop < config_.n_hops; ++hop) {
      const std::size_t base = hop * set_size;
      float max_score = -std::numeric_limits<float>::infinity();
      for (std::size_t j = 0; j < set_size; ++j) {
        auto p = projected.row(base + j);
        float acc = 0.0f;
        for (std::size_t c = 0; c < d; ++c) acc += p[c] * v[c];
        attention[j] = acc;
        max_score = std::max(max_score, acc);
      }
      float denominator = 0.0f;
      for (std::size_t j = 0; j < set_size; ++j) {
        attention[j] = std::exp(attention[j] - max_score);
        denominator += attention[j];
      }
      for (std::size_t j = 0; j < set_size; ++j) {
        const float p = attention[j] / denominator;
        auto t = tails.row(base + j);
        for (std::size_t c = 0; c < d; ++c) response[c] += p * t[c];
      }
    }
    float score = 0.0f;
    for (std::size_t c = 0; c < d; ++c) score += response[c] * v[c];
    out[item] = score;
  }
}

}  // namespace ckat::baselines
