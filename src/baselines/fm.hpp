// Factorization Machine baselines (Table II):
//   * FM  (Rendle 2011): linear terms + second-order factor
//     interactions over the (user, item, item-CKG-entities) features.
//   * NFM (He & Chua 2017): FM's bi-interaction pooling followed by a
//     one-hidden-layer MLP (the configuration the paper uses).
// Both are trained with the BPR pairwise loss on the same splits as all
// other models.
#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "core/bpr.hpp"
#include "eval/recommender.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct FmConfig {
  std::size_t embedding_dim = 64;
  std::size_t hidden_dim = 64;  // NFM only
  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  float dropout = 0.1f;  // NFM only
  std::size_t batch_size = 2048;
  int epochs = 40;
  std::uint64_t seed = 7;
};

/// Shared machinery; `neural` switches between FM and NFM heads.
class FmModel : public eval::Recommender {
 public:
  FmModel(const graph::CollaborativeKg& ckg,
          const graph::InteractionSet& train, FmConfig config, bool neural);

  [[nodiscard]] std::string name() const override {
    return neural_ ? "NFM" : "FM";
  }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  /// Builds the score head for a feature batch on the tape; returns a
  /// (B, 1) score Var.
  nn::Var score_batch(nn::Tape& tape, const FeatureBatch& features,
                      bool training, util::Rng& dropout_rng);

  float train_step(util::Rng& rng);
  void cache_item_sums();

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  FmConfig config_;
  bool neural_;

  std::vector<std::vector<std::uint32_t>> item_attributes_;
  nn::ParamStore params_;
  nn::Parameter* factors_ = nullptr;    // (n_entities, d)
  nn::Parameter* linear_ = nullptr;     // (n_entities, 1)
  nn::Parameter* hidden_w_ = nullptr;   // NFM: (d, hidden)
  nn::Parameter* hidden_b_ = nullptr;   // NFM: (1, hidden)
  nn::Parameter* output_w_ = nullptr;   // NFM: (hidden, 1)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  std::unique_ptr<core::BprSampler> sampler_;
  util::Rng rng_;
  bool fitted_ = false;

  // Per-item caches for fast full-ranking evaluation (see
  // cache_item_sums for the decomposition).
  nn::Tensor item_sum_;
  nn::Tensor item_bi_;
  std::vector<float> item_linear_;
};

class NfmModel final : public FmModel {
 public:
  NfmModel(const graph::CollaborativeKg& ckg,
           const graph::InteractionSet& train, FmConfig config)
      : FmModel(ckg, train, config, /*neural=*/true) {}
};

class PlainFmModel final : public FmModel {
 public:
  PlainFmModel(const graph::CollaborativeKg& ckg,
               const graph::InteractionSet& train, FmConfig config)
      : FmModel(ckg, train, config, /*neural=*/false) {}
};

}  // namespace ckat::baselines
