// CKE (Zhang et al. 2016): collaborative knowledge base embedding.
// Matrix factorization where each item's latent vector is offset by its
// TransR structural embedding: score(u, i) = p_u . (q_i + e_i), trained
// jointly with the TransR margin loss on the knowledge triples
// (regularization-based use of the KG -- first-order only, Sec. VI.E).
#pragma once

#include <memory>

#include "core/bpr.hpp"
#include "core/transr.hpp"
#include "eval/recommender.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct CkeConfig {
  std::size_t embedding_dim = 64;
  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  float transr_margin = 1.0f;
  std::size_t batch_size = 2048;
  std::size_t kg_batch_size = 4096;
  int epochs = 40;
  std::uint64_t seed = 7;
};

class CkeModel final : public eval::Recommender {
 public:
  CkeModel(const graph::CollaborativeKg& ckg,
           const graph::InteractionSet& train, CkeConfig config);

  [[nodiscard]] std::string name() const override { return "CKE"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  float cf_step(util::Rng& rng);

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  CkeConfig config_;

  nn::ParamStore params_;
  nn::Parameter* user_factors_ = nullptr;
  nn::Parameter* item_factors_ = nullptr;
  std::unique_ptr<core::TransR> transr_;
  std::vector<core::KgEdge> kg_edges_;

  std::unique_ptr<nn::AdamOptimizer> cf_optimizer_;
  std::unique_ptr<nn::AdamOptimizer> kg_optimizer_;
  std::unique_ptr<core::BprSampler> sampler_;
  util::Rng rng_;
  bool fitted_ = false;
};

}  // namespace ckat::baselines
