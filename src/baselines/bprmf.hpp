// BPRMF (Rendle et al. 2012): pairwise matrix factorization from
// implicit feedback, optimized with the BPR loss. The pure
// collaborative-filtering baseline of Table II -- no knowledge graph.
#pragma once

#include <memory>

#include "core/bpr.hpp"
#include "eval/recommender.hpp"
#include "graph/interactions.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct BprmfConfig {
  std::size_t embedding_dim = 64;
  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  std::size_t batch_size = 2048;
  int epochs = 60;
  std::uint64_t seed = 7;
};

class BprmfModel final : public eval::Recommender {
 public:
  BprmfModel(const graph::InteractionSet& train, BprmfConfig config);

  [[nodiscard]] std::string name() const override { return "BPRMF"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  /// One tiled GEMM of the gathered user factors against the item
  /// factor table; bit-identical to score_items per user.
  void score_batch(std::span<const std::uint32_t> users,
                   std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  float train_step(util::Rng& rng);

  const graph::InteractionSet& train_;
  BprmfConfig config_;
  nn::ParamStore params_;
  nn::Parameter* user_factors_ = nullptr;
  nn::Parameter* item_factors_ = nullptr;
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  std::unique_ptr<core::BprSampler> sampler_;
  util::Rng rng_;
  bool fitted_ = false;
};

}  // namespace ckat::baselines
