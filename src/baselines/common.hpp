// Shared helpers for the baseline models: feature extraction for the
// factorization models (FM/NFM use user id + item id + the item's CKG
// entities as input features, Sec. VI.C) and knowledge-neighborhood
// utilities for the propagation baselines (RippleNet, KGCN).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ckg.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

/// For each item, the attribute entity ids it links to in the CKG's
/// knowledge triples (either direction). Indexed by item id; entity ids
/// follow the CKG layout.
std::vector<std::vector<std::uint32_t>> item_attribute_entities(
    const graph::CollaborativeKg& ckg);

/// Fixed-size sampled neighbor table over the full CKG (KGCN's
/// receptive-field sampling): for every entity, `sample_size` neighbors
/// (tail, relation) drawn with replacement from its edges. Entities with
/// no edges get self-loops with relation 0.
struct SampledNeighbors {
  std::size_t sample_size = 0;
  std::vector<std::uint32_t> tails;      // entity * sample_size + j
  std::vector<std::uint32_t> relations;  // same layout

  [[nodiscard]] std::size_t n_entities() const {
    return sample_size == 0 ? 0 : tails.size() / sample_size;
  }
};

/// `knowledge_only` restricts sampling to the knowledge triples (the
/// original KGCN operates on the item KG; interact edges would flood
/// item neighborhoods with arbitrary users).
SampledNeighbors sample_neighbors(const graph::CollaborativeKg& ckg,
                                  std::size_t sample_size, util::Rng& rng,
                                  bool knowledge_only = true);

/// Flattened feature lists for the factorization models. Sample i's
/// features are flat[segments == i]; feature ids live in the CKG entity
/// id space (user entity + item entity + the item's attribute entities).
struct FeatureBatch {
  std::vector<std::uint32_t> flat;
  std::vector<std::uint32_t> segments;
  std::size_t n_samples = 0;
};

FeatureBatch build_feature_batch(
    const graph::CollaborativeKg& ckg,
    const std::vector<std::vector<std::uint32_t>>& item_attributes,
    std::span<const std::uint32_t> users, std::span<const std::uint32_t> items);

/// RippleNet ripple sets: per user and hop, a fixed-size set of
/// knowledge triples (h, r, t) reachable from the user's training items.
/// Hop 0 expands from the user's items; hop k from hop k-1 tails. Sets
/// are padded/truncated to `set_size` by sampling with replacement;
/// users whose items have no knowledge edges fall back to self-loops on
/// their items.
struct RippleSets {
  std::size_t n_hops = 0;
  std::size_t set_size = 0;
  // Layout: (user * n_hops + hop) * set_size + j.
  std::vector<std::uint32_t> heads;
  std::vector<std::uint32_t> relations;
  std::vector<std::uint32_t> tails;
};

RippleSets build_ripple_sets(const graph::CollaborativeKg& ckg,
                             const graph::InteractionSet& train,
                             std::size_t n_hops, std::size_t set_size,
                             util::Rng& rng);

}  // namespace ckat::baselines
