#include "baselines/kgcn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/kernels.hpp"

namespace ckat::baselines {

KgcnModel::KgcnModel(const graph::CollaborativeKg& ckg,
                     const graph::InteractionSet& train, KgcnConfig config)
    : ckg_(ckg), train_(train), config_(config), rng_(config.seed) {
  util::Rng neighbor_rng = rng_.fork(1);
  neighbors_ = sample_neighbors(ckg, config_.neighbor_sample_size,
                                neighbor_rng);
  n_relations_ = 2 * ckg.n_relations();

  util::Rng init_rng = rng_.fork(0);
  user_ = &params_.create("kgcn.user", train.n_users(), config_.embedding_dim);
  entity_ =
      &params_.create("kgcn.entity", ckg.n_entities(), config_.embedding_dim);
  relation_ = &params_.create("kgcn.relation", n_relations_,
                              config_.embedding_dim);
  agg_w_ = &params_.create("kgcn.W", config_.embedding_dim,
                           config_.embedding_dim);
  agg_b_ = &params_.create("kgcn.b", 1, config_.embedding_dim);
  nn::xavier_uniform(user_->value(), init_rng);
  nn::xavier_uniform(entity_->value(), init_rng);
  nn::xavier_uniform(relation_->value(), init_rng);
  nn::xavier_uniform(agg_w_->value(), init_rng);

  optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<core::BprSampler>(train_);
}

nn::Var KgcnModel::aggregate_items(
    nn::Tape& tape, nn::Var user_embedding,
    std::span<const std::uint32_t> item_entities) {
  const std::size_t batch = item_entities.size();
  const std::size_t k = config_.neighbor_sample_size;

  std::vector<std::uint32_t> tails, relations, segments, user_rows;
  tails.reserve(batch * k);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t base = static_cast<std::size_t>(item_entities[b]) * k;
    for (std::size_t j = 0; j < k; ++j) {
      tails.push_back(neighbors_.tails[base + j]);
      relations.push_back(neighbors_.relations[base + j]);
      segments.push_back(static_cast<std::uint32_t>(b));
      user_rows.push_back(static_cast<std::uint32_t>(b));
    }
  }

  // pi(u, r) = softmax over the K sampled neighbors of u . e_r.
  nn::Var relation_embeddings = tape.gather_param(*relation_, relations);
  nn::Var user_expanded = tape.rows(user_embedding, user_rows);
  nn::Var raw = tape.sum_cols(tape.mul(user_expanded, relation_embeddings));
  nn::Var attention = tape.segment_softmax(raw, segments);

  nn::Var neighborhood = tape.segment_sum(
      tape.mul_colvec(tape.gather_param(*entity_, tails), attention),
      segments, batch);
  nn::Var combined =
      tape.add(tape.gather_param(
                   *entity_, std::vector<std::uint32_t>(item_entities.begin(),
                                                        item_entities.end())),
               neighborhood);
  return tape.relu(tape.add_rowvec(tape.matmul(combined, tape.param(*agg_w_)),
                                   tape.param(*agg_b_)));
}

float KgcnModel::train_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.batch_size, rng);
  std::vector<std::uint32_t> users, pos_entities, neg_entities;
  for (const core::BprTriple& t : batch) {
    users.push_back(t.user);
    pos_entities.push_back(ckg_.item_entity(t.positive));
    neg_entities.push_back(ckg_.item_entity(t.negative));
  }

  nn::Tape tape;
  nn::Var u = tape.gather_param(*user_, users);
  nn::Var pos_repr = aggregate_items(tape, u, pos_entities);
  nn::Var neg_repr = aggregate_items(tape, u, neg_entities);

  nn::Var pos_scores = tape.sum_cols(tape.mul(u, pos_repr));
  nn::Var neg_scores = tape.sum_cols(tape.mul(u, neg_repr));
  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));
  nn::Var reg = tape.reduce_sum(
      tape.add(tape.add(tape.square(u), tape.square(pos_repr)),
               tape.square(neg_repr)));
  nn::Var loss = tape.add(
      bpr, tape.scale(reg, config_.l2_coefficient /
                               static_cast<float>(batch.size())));
  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  optimizer_->step(params_);
  return loss_value;
}

void KgcnModel::fit() {
  const std::size_t batches = sampler_->batches_per_epoch(config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < batches; ++b) train_step(rng_);
  }
  fitted_ = true;
}

void KgcnModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) throw std::logic_error("KgcnModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("KgcnModel: output span size mismatch");
  }
  const std::size_t d = config_.embedding_dim;
  const std::size_t k = config_.neighbor_sample_size;
  const nn::Tensor& e = entity_->value();
  const nn::Tensor& rel = relation_->value();
  auto u = user_->value().row(user);

  // u . e_r is shared across all items; precompute per relation.
  std::vector<float> relation_scores(n_relations_);
  for (std::size_t r = 0; r < n_relations_; ++r) {
    float acc = 0.0f;
    auto row = rel.row(r);
    for (std::size_t c = 0; c < d; ++c) acc += u[c] * row[c];
    relation_scores[r] = acc;
  }

  // Build combined = e_v + e_N for all items, then one GEMM + bias +
  // ReLU + dot with u.
  nn::Tensor combined(n_items(), d);
  std::vector<float> attention(k);
  for (std::size_t item = 0; item < n_items(); ++item) {
    const std::uint32_t entity =
        ckg_.item_entity(static_cast<std::uint32_t>(item));
    const std::size_t base = static_cast<std::size_t>(entity) * k;
    float max_score = -std::numeric_limits<float>::infinity();
    for (std::size_t j = 0; j < k; ++j) {
      attention[j] = relation_scores[neighbors_.relations[base + j]];
      max_score = std::max(max_score, attention[j]);
    }
    float denominator = 0.0f;
    for (std::size_t j = 0; j < k; ++j) {
      attention[j] = std::exp(attention[j] - max_score);
      denominator += attention[j];
    }
    auto dst = combined.row(item);
    auto ev = e.row(entity);
    std::copy(ev.begin(), ev.end(), dst.begin());
    for (std::size_t j = 0; j < k; ++j) {
      const float p = attention[j] / denominator;
      auto tail = e.row(neighbors_.tails[base + j]);
      for (std::size_t c = 0; c < d; ++c) dst[c] += p * tail[c];
    }
  }

  nn::Tensor transformed(n_items(), d);
  nn::gemm(combined, agg_w_->value(), transformed);
  const nn::Tensor& b = agg_b_->value();
  for (std::size_t item = 0; item < n_items(); ++item) {
    auto row = transformed.row(item);
    float score = 0.0f;
    for (std::size_t c = 0; c < d; ++c) {
      const float activated = std::max(row[c] + b(0, c), 0.0f);
      score += activated * u[c];
    }
    out[item] = score;
  }
}

}  // namespace ckat::baselines
