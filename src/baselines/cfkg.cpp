#include "baselines/cfkg.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/init.hpp"
#include "nn/tape.hpp"

namespace ckat::baselines {

CfkgModel::CfkgModel(const graph::CollaborativeKg& ckg,
                     const graph::InteractionSet& train, CfkgConfig config)
    : ckg_(ckg),
      train_(train),
      config_(config),
      adjacency_(ckg.build_adjacency()),
      rng_(config.seed) {
  util::Rng init_rng = rng_.fork(0);
  entity_ =
      &params_.create("cfkg.entity", ckg.n_entities(), config_.embedding_dim);
  relation_ = &params_.create("cfkg.relation", adjacency_.n_relations(),
                              config_.embedding_dim);
  nn::xavier_uniform(entity_->value(), init_rng);
  nn::xavier_uniform(relation_->value(), init_rng);
  optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
}

float CfkgModel::train_step(util::Rng& rng) {
  // TransE margin loss over a batch of edges from the unified graph
  // (interact edges included), grouped by relation for the e_r rows.
  const std::size_t batch_size =
      std::min(config_.batch_size, adjacency_.n_edges());
  std::vector<std::size_t> picks(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    picks[i] = rng.uniform_index(adjacency_.n_edges());
  }
  std::sort(picks.begin(), picks.end(), [&](std::size_t a, std::size_t b) {
    return adjacency_.relations()[a] < adjacency_.relations()[b];
  });

  nn::Tape tape;
  nn::Var total{};
  std::size_t begin = 0;
  while (begin < picks.size()) {
    const std::uint32_t r = adjacency_.relations()[picks[begin]];
    std::size_t end = begin;
    std::vector<std::uint32_t> heads, tails, neg_tails;
    while (end < picks.size() && adjacency_.relations()[picks[end]] == r) {
      heads.push_back(adjacency_.heads()[picks[end]]);
      tails.push_back(adjacency_.tails()[picks[end]]);
      neg_tails.push_back(
          static_cast<std::uint32_t>(rng.uniform_index(ckg_.n_entities())));
      ++end;
    }
    nn::Var e_r = tape.gather_param(*relation_, {r});
    nn::Var translated =
        tape.add_rowvec(tape.gather_param(*entity_, heads), e_r);
    nn::Var f_pos = tape.sum_cols(tape.square(
        tape.sub(translated, tape.gather_param(*entity_, tails))));
    nn::Var f_neg = tape.sum_cols(tape.square(
        tape.sub(translated, tape.gather_param(*entity_, neg_tails))));
    nn::Var group = tape.reduce_sum(
        tape.relu(tape.add_scalar(tape.sub(f_pos, f_neg), config_.margin)));
    total = total.valid() ? tape.add(total, group) : group;
    begin = end;
  }
  total = tape.scale(total, 1.0f / static_cast<float>(batch_size));
  const float loss_value = tape.value(total)(0, 0);
  tape.backward(total);
  optimizer_->step(params_);
  return loss_value;
}

void CfkgModel::fit() {
  const std::size_t batches = std::max<std::size_t>(
      1, (adjacency_.n_edges() + config_.batch_size - 1) / config_.batch_size);
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    for (std::size_t b = 0; b < batches; ++b) train_step(rng_);
  }
  fitted_ = true;
}

void CfkgModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) throw std::logic_error("CfkgModel: fit() first");
  if (out.size() != n_items()) {
    throw std::invalid_argument("CfkgModel: output span size mismatch");
  }
  const nn::Tensor& e = entity_->value();
  auto eu = e.row(ckg_.user_entity(user));
  auto er = relation_->value().row(graph::CollaborativeKg::interact_relation());
  for (std::size_t v = 0; v < n_items(); ++v) {
    auto ev = e.row(ckg_.item_entity(static_cast<std::uint32_t>(v)));
    float dist = 0.0f;
    for (std::size_t c = 0; c < eu.size(); ++c) {
      const float diff = eu[c] + er[c] - ev[c];
      dist += diff * diff;
    }
    out[v] = -dist;  // closer translation = better recommendation
  }
}

}  // namespace ckat::baselines
