// KGCN (Wang et al. 2019): knowledge graph convolutional network.
//
// For a candidate item v and user u, v's fixed-size sampled neighborhood
// is aggregated with user-relation attention pi(u, r) = softmax(u . r):
//   e_N = sum_k pi(u, r_k) e_{t_k}
//   e_v' = ReLU(W (e_v + e_N) + b)       (sum aggregator)
//   score = u . e_v'
// The neighbor table is sampled once at construction (the standard
// receptive-field approximation).
#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "core/bpr.hpp"
#include "eval/recommender.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct KgcnConfig {
  std::size_t embedding_dim = 64;
  std::size_t neighbor_sample_size = 16;
  float learning_rate = 0.005f;
  float l2_coefficient = 1e-4f;
  std::size_t batch_size = 2048;
  int epochs = 40;
  std::uint64_t seed = 7;
};

class KgcnModel final : public eval::Recommender {
 public:
  KgcnModel(const graph::CollaborativeKg& ckg,
            const graph::InteractionSet& train, KgcnConfig config);

  [[nodiscard]] std::string name() const override { return "KGCN"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  nn::Var aggregate_items(nn::Tape& tape, nn::Var user_embedding,
                          std::span<const std::uint32_t> item_entities);
  float train_step(util::Rng& rng);

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  KgcnConfig config_;

  SampledNeighbors neighbors_;
  std::size_t n_relations_ = 0;  // with inverses

  nn::ParamStore params_;
  nn::Parameter* user_ = nullptr;      // (n_users, d)
  nn::Parameter* entity_ = nullptr;    // (n_entities, d)
  nn::Parameter* relation_ = nullptr;  // (n_relations, d)
  nn::Parameter* agg_w_ = nullptr;     // (d, d)
  nn::Parameter* agg_b_ = nullptr;     // (1, d)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  std::unique_ptr<core::BprSampler> sampler_;
  util::Rng rng_;
  bool fitted_ = false;
};

}  // namespace ckat::baselines
