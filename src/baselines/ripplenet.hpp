// RippleNet (Wang et al. 2018): preference propagation over ripple sets.
//
// Each user carries H hops of "ripple" triples (h, r, t) expanding from
// their history items through the knowledge graph. For a candidate item
// v, each ripple triple receives attention p_i = softmax(v^T R_r e_h);
// the hop response is o_k = sum_i p_i e_t, and the user representation
// is sum_k o_k, scored against v by inner product. The paper sets the
// embedding size to 16 for RippleNet due to its computational cost
// (Sec. VI.D); we keep that and n_hop = 2.
#pragma once

#include <memory>

#include "baselines/common.hpp"
#include "core/bpr.hpp"
#include "eval/recommender.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace ckat::baselines {

struct RippleNetConfig {
  std::size_t embedding_dim = 16;  // Sec. VI.D
  std::size_t n_hops = 2;          // Sec. VI.D (n_hop = 2)
  std::size_t ripple_set_size = 32;
  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  std::size_t batch_size = 1024;
  int epochs = 30;
  std::uint64_t seed = 7;
};

class RippleNetModel final : public eval::Recommender {
 public:
  RippleNetModel(const graph::CollaborativeKg& ckg,
                 const graph::InteractionSet& train, RippleNetConfig config);

  [[nodiscard]] std::string name() const override { return "RippleNet"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override {
    return train_.n_users();
  }
  [[nodiscard]] std::size_t n_items() const override {
    return train_.n_items();
  }

 private:
  /// Builds the (B,1) score Var for a batch of users against the given
  /// item entities, recomputing ripple attention conditioned on each
  /// item (the model's defining property).
  nn::Var score_batch(nn::Tape& tape, std::span<const std::uint32_t> users,
                      nn::Var item_embedding);

  float train_step(util::Rng& rng);

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  RippleNetConfig config_;

  RippleSets ripples_;
  std::size_t n_relations_ = 0;  // with inverses

  nn::ParamStore params_;
  nn::Parameter* entity_ = nullptr;
  std::vector<nn::Parameter*> relation_transforms_;  // R_r, (d, d)
  std::unique_ptr<nn::AdamOptimizer> optimizer_;
  std::unique_ptr<core::BprSampler> sampler_;
  util::Rng rng_;
  bool fitted_ = false;
};

}  // namespace ckat::baselines
