#include "baselines/common.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/adjacency.hpp"

namespace ckat::baselines {

std::vector<std::vector<std::uint32_t>> item_attribute_entities(
    const graph::CollaborativeKg& ckg) {
  const std::uint32_t item_begin = ckg.item_entity(0);
  const std::uint32_t item_end =
      item_begin + static_cast<std::uint32_t>(ckg.n_items());
  auto is_item = [&](std::uint32_t e) {
    return e >= item_begin && e < item_end;
  };

  std::vector<std::vector<std::uint32_t>> attrs(ckg.n_items());
  for (const graph::Triple& t : ckg.knowledge_triples()) {
    if (is_item(t.head) && !is_item(t.tail)) {
      attrs[t.head - item_begin].push_back(t.tail);
    } else if (is_item(t.tail) && !is_item(t.head)) {
      attrs[t.tail - item_begin].push_back(t.head);
    }
  }
  for (auto& a : attrs) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }
  return attrs;
}

FeatureBatch build_feature_batch(
    const graph::CollaborativeKg& ckg,
    const std::vector<std::vector<std::uint32_t>>& item_attributes,
    std::span<const std::uint32_t> users,
    std::span<const std::uint32_t> items) {
  if (users.size() != items.size()) {
    throw std::invalid_argument("build_feature_batch: size mismatch");
  }
  FeatureBatch out;
  out.n_samples = users.size();
  for (std::size_t i = 0; i < users.size(); ++i) {
    auto push = [&](std::uint32_t feature) {
      out.flat.push_back(feature);
      out.segments.push_back(static_cast<std::uint32_t>(i));
    };
    push(ckg.user_entity(users[i]));
    push(ckg.item_entity(items[i]));
    for (std::uint32_t attr : item_attributes.at(items[i])) push(attr);
  }
  return out;
}

SampledNeighbors sample_neighbors(const graph::CollaborativeKg& ckg,
                                  std::size_t sample_size, util::Rng& rng,
                                  bool knowledge_only) {
  if (sample_size == 0) {
    throw std::invalid_argument("sample_neighbors: sample_size must be > 0");
  }
  const graph::Adjacency adjacency =
      knowledge_only
          ? graph::Adjacency(ckg.knowledge_triples(), ckg.n_entities(),
                             ckg.n_relations(), /*add_inverse=*/true)
          : ckg.build_adjacency();
  SampledNeighbors out;
  out.sample_size = sample_size;
  out.tails.resize(ckg.n_entities() * sample_size);
  out.relations.resize(ckg.n_entities() * sample_size);
  for (std::uint32_t e = 0; e < ckg.n_entities(); ++e) {
    const auto [begin, end] = adjacency.edge_range(e);
    for (std::size_t j = 0; j < sample_size; ++j) {
      const std::size_t slot = e * sample_size + j;
      if (begin == end) {
        out.tails[slot] = e;  // isolated entity: self-loop
        out.relations[slot] = 0;
      } else {
        const std::int64_t pick =
            begin + static_cast<std::int64_t>(
                        rng.uniform_index(static_cast<std::size_t>(end - begin)));
        out.tails[slot] = adjacency.tails()[pick];
        out.relations[slot] = adjacency.relations()[pick];
      }
    }
  }
  return out;
}

RippleSets build_ripple_sets(const graph::CollaborativeKg& ckg,
                             const graph::InteractionSet& train,
                             std::size_t n_hops, std::size_t set_size,
                             util::Rng& rng) {
  if (n_hops == 0 || set_size == 0) {
    throw std::invalid_argument("build_ripple_sets: hops and size must be > 0");
  }

  // Knowledge-only adjacency (RippleNet propagates through the KG, not
  // through other users' interactions).
  const graph::Adjacency adjacency(ckg.knowledge_triples(), ckg.n_entities(),
                                   ckg.n_relations(), /*add_inverse=*/true);

  RippleSets out;
  out.n_hops = n_hops;
  out.set_size = set_size;
  const std::size_t total = train.n_users() * n_hops * set_size;
  out.heads.resize(total);
  out.relations.resize(total);
  out.tails.resize(total);

  for (std::uint32_t u = 0; u < train.n_users(); ++u) {
    // Seeds: the user's training items, as CKG entities.
    std::vector<std::uint32_t> frontier;
    for (std::uint32_t item : train.items_of(u)) {
      frontier.push_back(ckg.item_entity(item));
    }
    if (frontier.empty()) {
      frontier.push_back(ckg.user_entity(u));  // cold user: seed on itself
    }

    for (std::size_t hop = 0; hop < n_hops; ++hop) {
      std::vector<std::uint32_t> next_frontier;
      const std::size_t base = (u * n_hops + hop) * set_size;
      for (std::size_t j = 0; j < set_size; ++j) {
        const std::uint32_t h =
            frontier[rng.uniform_index(frontier.size())];
        const auto [begin, end] = adjacency.edge_range(h);
        if (begin == end) {
          out.heads[base + j] = h;
          out.relations[base + j] = 0;
          out.tails[base + j] = h;  // self-loop fallback
        } else {
          const std::int64_t pick =
              begin + static_cast<std::int64_t>(rng.uniform_index(
                          static_cast<std::size_t>(end - begin)));
          out.heads[base + j] = h;
          out.relations[base + j] = adjacency.relations()[pick];
          out.tails[base + j] = adjacency.tails()[pick];
          next_frontier.push_back(adjacency.tails()[pick]);
        }
      }
      if (!next_frontier.empty()) frontier = std::move(next_frontier);
    }
  }
  return out;
}

}  // namespace ckat::baselines
