#include "delivery/cache.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace ckat::delivery {

CachePolicy::CachePolicy(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("CachePolicy: capacity must be > 0");
  }
}

void CachePolicy::insert(std::uint32_t object) {
  if (cached_.size() >= capacity_) {
    const std::uint32_t victim = evict_victim();
    if (!cached_.erase(victim)) {
      throw std::logic_error(name() + ": evicted an uncached object");
    }
    on_evict(victim);
  }
  cached_.insert(object);
  on_admit(object);
}

bool CachePolicy::access(std::uint32_t object) {
  if (cached_.count(object)) {
    on_touch(object);
    return true;
  }
  insert(object);
  return false;
}

bool CachePolicy::prefetch(std::uint32_t object) {
  if (cached_.count(object)) return false;
  insert(object);
  return true;
}

// ------------------------------------------------------------------ LRU

void LruCache::on_admit(std::uint32_t object) {
  order_.push_front(object);
  where_[object] = order_.begin();
}

void LruCache::on_touch(std::uint32_t object) {
  order_.splice(order_.begin(), order_, where_.at(object));
}

std::uint32_t LruCache::evict_victim() { return order_.back(); }

void LruCache::on_evict(std::uint32_t object) {
  order_.erase(where_.at(object));
  where_.erase(object);
}

// ------------------------------------------------------------------ LFU

void LfuCache::on_admit(std::uint32_t object) {
  stats_[object] = {1, ++clock_};
}

void LfuCache::on_touch(std::uint32_t object) {
  auto& [frequency, last] = stats_.at(object);
  ++frequency;
  last = ++clock_;
}

std::uint32_t LfuCache::evict_victim() {
  std::uint32_t victim = 0;
  auto best = std::make_pair(std::numeric_limits<std::uint64_t>::max(),
                             std::numeric_limits<std::uint64_t>::max());
  for (const auto& [object, stat] : stats_) {
    if (stat < best) {
      best = stat;
      victim = object;
    }
  }
  return victim;
}

void LfuCache::on_evict(std::uint32_t object) { stats_.erase(object); }

// ----------------------------------------------------------------- FIFO

void FifoCache::on_admit(std::uint32_t object) { queue_.push_back(object); }

std::uint32_t FifoCache::evict_victim() { return queue_.front(); }

void FifoCache::on_evict(std::uint32_t object) {
  queue_.remove(object);
}

// --------------------------------------------------------------- Belady

BeladyCache::BeladyCache(std::size_t capacity,
                         const std::vector<std::uint32_t>& future_accesses)
    : CachePolicy(capacity), sequence_(future_accesses) {
  for (std::size_t i = 0; i < future_accesses.size(); ++i) {
    positions_[future_accesses[i]].push_back(i);
  }
}

bool BeladyCache::access(std::uint32_t object) {
  if (cursor_ >= sequence_.size()) {
    throw std::logic_error(
        "BeladyCache: access past the end of the declared sequence");
  }
  if (sequence_[cursor_] != object) {
    throw std::logic_error(
        "BeladyCache: access to object " + std::to_string(object) +
        " does not match the declared sequence (expected " +
        std::to_string(sequence_[cursor_]) + " at position " +
        std::to_string(cursor_) + ")");
  }
  ++cursor_;  // the clairvoyant "now" moves past this access
  return CachePolicy::access(object);
}

std::size_t BeladyCache::next_use(std::uint32_t object) const {
  const auto it = positions_.find(object);
  if (it == positions_.end()) {
    return std::numeric_limits<std::size_t>::max();
  }
  const auto& uses = it->second;
  const auto next = std::lower_bound(uses.begin(), uses.end(), cursor_);
  return next == uses.end() ? std::numeric_limits<std::size_t>::max() : *next;
}

std::uint32_t BeladyCache::evict_victim() {
  std::uint32_t victim = 0;
  std::size_t farthest = 0;
  bool first = true;
  for (std::uint32_t object : cached_) {
    const std::size_t use = next_use(object);
    if (first || use > farthest) {
      farthest = use;
      victim = object;
      first = false;
    }
  }
  return victim;
}

// ---------------------------------------------------------------- factory

std::unique_ptr<CachePolicy> make_cache(const std::string& policy,
                                        std::size_t capacity) {
  if (policy == "LRU") return std::make_unique<LruCache>(capacity);
  if (policy == "LFU") return std::make_unique<LfuCache>(capacity);
  if (policy == "FIFO") return std::make_unique<FifoCache>(capacity);
  throw std::invalid_argument("make_cache: unknown policy '" + policy + "'");
}

}  // namespace ckat::delivery
