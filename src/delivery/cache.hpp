// Data-delivery cache simulation substrate.
//
// The paper's conclusion motivates using the recommender for the
// "'intelligent' discovery and anticipatory delivery of data and data
// products from large facilities" (and the authors' companion work
// builds an internet-scale cache service for science data). This module
// provides the cache-policy substrate that the prefetch simulator
// (prefetch.hpp) drives with recommendation models: classic demand
// policies (LRU, LFU, FIFO) plus the clairvoyant Belady policy as an
// offline upper bound.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace ckat::delivery {

/// A fixed-capacity object cache. Objects have unit size (facility data
/// objects are streamed in comparable chunks at this granularity).
class CachePolicy {
 public:
  explicit CachePolicy(std::size_t capacity);
  virtual ~CachePolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Demand access: returns true on hit. On miss the object is
  /// admitted (evicting per policy if full). Virtual so clairvoyant
  /// policies can track their position in the access sequence.
  virtual bool access(std::uint32_t object);

  /// Prefetch insertion: admits the object without counting an access;
  /// returns false if it was already cached.
  bool prefetch(std::uint32_t object);

  [[nodiscard]] bool contains(std::uint32_t object) const {
    return cached_.count(object) > 0;
  }
  [[nodiscard]] std::size_t size() const noexcept { return cached_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 protected:
  /// Policy hooks. `admit` runs after the object is inserted; `touch`
  /// on every access to a cached object; `evict_victim` must name a
  /// currently-cached object to remove.
  virtual void on_admit(std::uint32_t object) = 0;
  virtual void on_touch(std::uint32_t object) = 0;
  virtual std::uint32_t evict_victim() = 0;
  virtual void on_evict(std::uint32_t object) = 0;

  std::size_t capacity_;
  std::set<std::uint32_t> cached_;

 private:
  void insert(std::uint32_t object);
};

/// Least-recently-used eviction.
class LruCache final : public CachePolicy {
 public:
  explicit LruCache(std::size_t capacity) : CachePolicy(capacity) {}
  [[nodiscard]] std::string name() const override { return "LRU"; }

 protected:
  void on_admit(std::uint32_t object) override;
  void on_touch(std::uint32_t object) override;
  std::uint32_t evict_victim() override;
  void on_evict(std::uint32_t object) override;

 private:
  std::list<std::uint32_t> order_;  // front = most recent
  std::unordered_map<std::uint32_t, std::list<std::uint32_t>::iterator> where_;
};

/// Least-frequently-used eviction (ties broken by recency).
class LfuCache final : public CachePolicy {
 public:
  explicit LfuCache(std::size_t capacity) : CachePolicy(capacity) {}
  [[nodiscard]] std::string name() const override { return "LFU"; }

 protected:
  void on_admit(std::uint32_t object) override;
  void on_touch(std::uint32_t object) override;
  std::uint32_t evict_victim() override;
  void on_evict(std::uint32_t object) override;

 private:
  std::uint64_t clock_ = 0;
  // (frequency, last-touch) per object; victim = smallest pair.
  std::map<std::uint32_t, std::pair<std::uint64_t, std::uint64_t>> stats_;
};

/// First-in-first-out eviction.
class FifoCache final : public CachePolicy {
 public:
  explicit FifoCache(std::size_t capacity) : CachePolicy(capacity) {}
  [[nodiscard]] std::string name() const override { return "FIFO"; }

 protected:
  void on_admit(std::uint32_t object) override;
  void on_touch(std::uint32_t object) override {}
  std::uint32_t evict_victim() override;
  void on_evict(std::uint32_t object) override;

 private:
  std::list<std::uint32_t> queue_;  // front = oldest
};

/// Belady's clairvoyant policy: evicts the cached object whose next use
/// lies farthest in the future. Requires the full access sequence up
/// front; used as the offline optimal reference.
class BeladyCache final : public CachePolicy {
 public:
  BeladyCache(std::size_t capacity,
              const std::vector<std::uint32_t>& future_accesses);
  [[nodiscard]] std::string name() const override { return "Belady"; }

  /// Demand accesses must follow the future_accesses sequence given at
  /// construction; the clairvoyant cursor advances automatically (there
  /// is no separate advance() call for callers to forget, which used to
  /// silently corrupt hit-rates). An access that does not match the
  /// declared sequence throws std::logic_error.
  bool access(std::uint32_t object) override;

 protected:
  void on_admit(std::uint32_t object) override {}
  void on_touch(std::uint32_t object) override {}
  std::uint32_t evict_victim() override;
  void on_evict(std::uint32_t object) override {}

 private:
  [[nodiscard]] std::size_t next_use(std::uint32_t object) const;

  // Per object, sorted positions of its accesses in the sequence.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> positions_;
  std::vector<std::uint32_t> sequence_;  // for out-of-order detection
  std::size_t cursor_ = 0;
};

/// Factory for the demand policies (not Belady, which needs the trace).
std::unique_ptr<CachePolicy> make_cache(const std::string& policy,
                                        std::size_t capacity);

}  // namespace ckat::delivery
