// Anticipatory data delivery: recommendation-driven prefetching.
//
// The simulator replays a time-ordered slice of a facility query trace
// against a cache. Periodically, it asks a recommendation model for
// each recently-active user's top-P data objects and prefetches them.
// Comparing hit rates against demand-only caching and against a
// popularity prefetcher quantifies the paper's "anticipatory delivery"
// motivation: a knowledge-aware recommender knows *which user* will
// want *which object*, not just what is globally hot.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "delivery/cache.hpp"
#include "eval/recommender.hpp"
#include "facility/trace.hpp"
#include "graph/interactions.hpp"

namespace ckat::delivery {

struct PrefetchConfig {
  std::size_t cache_capacity = 64;
  /// Issue a prefetch round every this many demand accesses (0 = never,
  /// i.e. demand-only caching).
  std::size_t refresh_interval = 200;
  /// Top-P recommendations considered per active user per round.
  std::size_t per_user_prefetch = 3;
  /// Cap on insertions per round, as a fraction of cache capacity.
  /// Candidates across users are pooled and prioritized by model score,
  /// so prefetching cannot flood the cache and evict the hot set.
  double round_budget_fraction = 0.2;
  /// A user is "active" if seen within the last refresh window.
  std::string policy = "LRU";
};

struct PrefetchResult {
  std::string label;
  std::size_t n_accesses = 0;
  std::size_t hits = 0;
  std::size_t prefetch_inserted = 0;
  std::size_t prefetch_used = 0;  // prefetched objects hit before eviction
  /// Cold accesses: first touch of an object within the replayed
  /// period. A demand-only cache always misses these; only anticipatory
  /// prefetching can convert them to hits.
  std::size_t cold_accesses = 0;
  std::size_t cold_hits = 0;

  [[nodiscard]] double hit_rate() const {
    return n_accesses == 0 ? 0.0
                           : static_cast<double>(hits) /
                                 static_cast<double>(n_accesses);
  }
  [[nodiscard]] double cold_hit_rate() const {
    return cold_accesses == 0 ? 0.0
                              : static_cast<double>(cold_hits) /
                                    static_cast<double>(cold_accesses);
  }
  /// Fraction of prefetched objects that produced at least one hit.
  [[nodiscard]] double prefetch_precision() const {
    return prefetch_inserted == 0
               ? 0.0
               : static_cast<double>(prefetch_used) /
                     static_cast<double>(prefetch_inserted);
  }
};

/// Replays `accesses` through a cache with recommendation prefetching.
/// `model` may be null for demand-only simulation. The model's
/// `score_items` drives per-user prefetch ranking; each user's already
/// cached or previously prefetched-and-evicted items still count as
/// candidates (the simulator does not consult ground truth).
PrefetchResult simulate_prefetch(const std::vector<facility::QueryRecord>& accesses,
                                 const eval::Recommender* model,
                                 const PrefetchConfig& config,
                                 const std::string& label);

/// Offline-optimal reference: Belady eviction, demand-only.
PrefetchResult simulate_belady(const std::vector<facility::QueryRecord>& accesses,
                               std::size_t cache_capacity);

/// Splits a time-ordered trace at `fraction` (by record count): the
/// first part trains the recommender, the rest is replayed. Also
/// returns the train-interaction set for model fitting.
struct TemporalSplit {
  std::vector<facility::QueryRecord> history;  // training period
  std::vector<facility::QueryRecord> future;   // simulation period
  graph::InteractionSet train;

  TemporalSplit(std::size_t n_users, std::size_t n_items)
      : train(n_users, n_items) {}
};

TemporalSplit temporal_split(const std::vector<facility::QueryRecord>& trace,
                             std::size_t n_users, std::size_t n_items,
                             double fraction);

/// Global-popularity recommender (prefetch baseline): score = number of
/// training queries per object, identical for every user.
class PopularityModel final : public eval::Recommender {
 public:
  PopularityModel(const graph::InteractionSet& train, std::size_t n_users,
                  std::size_t n_items);

  [[nodiscard]] std::string name() const override { return "Popularity"; }
  void fit() override {}
  void score_items(std::uint32_t user, std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override { return n_users_; }
  [[nodiscard]] std::size_t n_items() const override { return n_items_; }

 private:
  std::size_t n_users_;
  std::size_t n_items_;
  std::vector<float> popularity_;
};

}  // namespace ckat::delivery
