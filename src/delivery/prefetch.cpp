#include "delivery/prefetch.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <stdexcept>
#include <unordered_set>

#include "eval/metrics.hpp"

namespace ckat::delivery {

PrefetchResult simulate_prefetch(
    const std::vector<facility::QueryRecord>& accesses,
    const eval::Recommender* model, const PrefetchConfig& config,
    const std::string& label) {
  auto cache = make_cache(config.policy, config.cache_capacity);

  PrefetchResult result;
  result.label = label;

  std::set<std::uint32_t> active_users;
  std::unordered_set<std::uint32_t> live_prefetched;  // in cache, unused
  std::unordered_set<std::uint32_t> seen_objects;
  std::vector<float> scores;

  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const facility::QueryRecord& rec = accesses[i];
    const bool cold = seen_objects.insert(rec.object).second;
    const bool hit = cache->access(rec.object);
    result.n_accesses++;
    result.hits += hit;
    result.cold_accesses += cold;
    result.cold_hits += cold && hit;
    if (hit && live_prefetched.erase(rec.object)) {
      result.prefetch_used++;  // a prefetch paid off
    }
    active_users.insert(rec.user);

    const bool round_due = model != nullptr && config.refresh_interval > 0 &&
                           (i + 1) % config.refresh_interval == 0;
    if (!round_due) continue;

    // Pool candidates across active users, keep the best-scored ones up
    // to the round budget (never flood the cache with speculation).
    scores.resize(model->n_items());
    std::unordered_map<std::uint32_t, float> candidates;
    for (std::uint32_t user : active_users) {
      model->score_items(user, scores);
      for (std::uint32_t object :
           eval::top_k_indices(scores, config.per_user_prefetch)) {
        if (cache->contains(object)) continue;
        auto [it, inserted] = candidates.try_emplace(object, scores[object]);
        if (!inserted) it->second = std::max(it->second, scores[object]);
      }
    }
    std::vector<std::pair<float, std::uint32_t>> ranked;
    ranked.reserve(candidates.size());
    for (const auto& [object, score] : candidates) {
      ranked.push_back({score, object});
    }
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    const auto budget = static_cast<std::size_t>(std::max(
        1.0, config.round_budget_fraction *
                 static_cast<double>(config.cache_capacity)));
    for (std::size_t r = 0; r < std::min(budget, ranked.size()); ++r) {
      if (cache->prefetch(ranked[r].second)) {
        result.prefetch_inserted++;
        live_prefetched.insert(ranked[r].second);
      }
    }
    active_users.clear();
    // Evicted-but-unused prefetches stay counted as inserted only;
    // reconcile liveness lazily against the cache.
    for (auto it = live_prefetched.begin(); it != live_prefetched.end();) {
      it = cache->contains(*it) ? std::next(it) : live_prefetched.erase(it);
    }
  }
  return result;
}

PrefetchResult simulate_belady(
    const std::vector<facility::QueryRecord>& accesses,
    std::size_t cache_capacity) {
  std::vector<std::uint32_t> sequence;
  sequence.reserve(accesses.size());
  for (const auto& rec : accesses) sequence.push_back(rec.object);

  BeladyCache cache(cache_capacity, sequence);
  PrefetchResult result;
  result.label = "Belady (offline optimal)";
  std::unordered_set<std::uint32_t> seen_objects;
  for (std::uint32_t object : sequence) {
    const bool cold = seen_objects.insert(object).second;
    const bool hit = cache.access(object);
    result.n_accesses++;
    result.hits += hit;
    result.cold_accesses += cold;
    result.cold_hits += cold && hit;
  }
  return result;
}

TemporalSplit temporal_split(const std::vector<facility::QueryRecord>& trace,
                             std::size_t n_users, std::size_t n_items,
                             double fraction) {
  if (fraction <= 0.0 || fraction >= 1.0) {
    throw std::invalid_argument("temporal_split: fraction in (0,1)");
  }
  TemporalSplit split(n_users, n_items);
  const auto cut = static_cast<std::size_t>(
      fraction * static_cast<double>(trace.size()));
  split.history.assign(trace.begin(), trace.begin() + static_cast<std::ptrdiff_t>(cut));
  split.future.assign(trace.begin() + static_cast<std::ptrdiff_t>(cut),
                      trace.end());
  for (const auto& rec : split.history) {
    split.train.add(rec.user, rec.object);
  }
  split.train.finalize();
  return split;
}

PopularityModel::PopularityModel(const graph::InteractionSet& train,
                                 std::size_t n_users, std::size_t n_items)
    : n_users_(n_users), n_items_(n_items), popularity_(n_items, 0.0f) {
  for (const graph::Interaction& x : train.pairs()) {
    popularity_[x.item] += 1.0f;
  }
}

void PopularityModel::score_items(std::uint32_t /*user*/,
                                  std::span<float> out) const {
  if (out.size() != n_items_) {
    throw std::invalid_argument("PopularityModel: output span size mismatch");
  }
  std::copy(popularity_.begin(), popularity_.end(), out.begin());
}

}  // namespace ckat::delivery
