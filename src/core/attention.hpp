// Knowledge-aware attention (Sec. V.B, Eq. 4-5).
//
// For every CKG edge (h, r, t) the attention score is
//   fa(h,r,t) = (W_r e_t)^T tanh(W_r e_h + e_r),
// normalized by softmax over each head's edge set. The resulting
// coefficients form a sparse propagation matrix A (rows = heads,
// cols = tails) that the CKAT layers multiply by the entity matrix
// (Eq. 3). Following the KGAT training schedule, the matrix is
// recomputed from the TransR parameters between epochs and held fixed
// during CF backpropagation.
#pragma once

#include "core/transr.hpp"
#include "graph/adjacency.hpp"
#include "nn/kernels.hpp"

namespace ckat::core {

/// Propagation matrix plus its transpose (needed by the backward pass).
struct PropagationMatrix {
  nn::CsrMatrix forward;
  nn::CsrMatrix backward;
};

/// Computes attention-weighted propagation coefficients from the current
/// TransR parameters (Eq. 4-5).
PropagationMatrix build_attention_matrix(const graph::Adjacency& adjacency,
                                         const TransR& transr);

/// Uniform coefficients 1/|N_h| -- the "w/o Att" ablation of Table IV.
PropagationMatrix build_uniform_matrix(const graph::Adjacency& adjacency);

/// Raw (pre-softmax) attention scores per edge, in adjacency edge order.
/// Exposed for tests and diagnostics.
std::vector<float> raw_attention_scores(const graph::Adjacency& adjacency,
                                        const TransR& transr);

}  // namespace ckat::core
