#include "core/bpr.hpp"

#include <stdexcept>

namespace ckat::core {

BprSampler::BprSampler(const graph::InteractionSet& train) : train_(train) {
  if (train.size() == 0) {
    throw std::invalid_argument("BprSampler: empty training set");
  }
}

std::vector<BprTriple> BprSampler::sample(std::size_t batch_size,
                                          util::Rng& rng) const {
  auto pairs = train_.pairs();
  std::vector<BprTriple> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    const auto& p = pairs[rng.uniform_index(pairs.size())];
    batch.push_back(
        BprTriple{p.user, p.item, train_.sample_negative(p.user, rng)});
  }
  return batch;
}

std::size_t BprSampler::n_interactions() const noexcept {
  return train_.size();
}

std::size_t BprSampler::batches_per_epoch(std::size_t batch_size) const {
  if (batch_size == 0) {
    throw std::invalid_argument("BprSampler: batch size must be > 0");
  }
  return (train_.size() + batch_size - 1) / batch_size;
}

}  // namespace ckat::core
