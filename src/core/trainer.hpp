// Minibatched multi-threaded training engine (DESIGN.md section 16).
//
// Both training phases decompose a sampled batch into fixed-size
// *slots* -- the partition depends only on the batch, never on the
// thread count. Workers compute each slot's forward/backward on a
// slot-local tape whose leaves are Tape::input() copies of the shared
// state; the coordinator then folds the slot gradients back in slot
// order. Per-slot work writes only slot-indexed storage and every
// floating-point reduction that crosses slots happens serially in slot
// order, so CKAT_TRAIN_THREADS never changes a single result bit --
// the same contract BatchRanker proves for ranking.
//
//   CF step: the shared tape's propagation forward runs once; slots
//   cover the BPR pairs; slot gradients w.r.t. the gathered
//   representation rows are scattered into one seed tensor and pushed
//   through the shared propagation stack with backward_seeded().
//
//   KG step: the batch is relation-sorted (grouping edges that share a
//   projection W_r) and sliced into slots inside each group; slot
//   gradients scatter-add into the Parameter gradient accumulators.
//   Negative tails are presampled by the caller so the RNG stream
//   stays serial and checkpoint resume stays bit-exact.
//
// Both steps finish with the slot-ordered parallel sparse Adam
// (AdamOptimizer::step(params, pool)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/transr.hpp"
#include "nn/optim.hpp"
#include "nn/tape.hpp"
#include "util/parallel.hpp"

namespace ckat::core {

/// Resolves the training worker-thread count: `requested` when
/// positive, otherwise CKAT_TRAIN_THREADS, otherwise 1. Clamped to
/// [1, 64].
int resolve_train_threads(int requested);

/// Resolves the per-step BPR pair count: `requested` when positive,
/// otherwise CKAT_TRAIN_BATCH, otherwise `fallback` (the legacy
/// cf_batch_size). Clamped to [1, 1 << 20].
std::size_t resolve_train_batch(std::size_t requested, std::size_t fallback);

class MinibatchTrainer {
 public:
  explicit MinibatchTrainer(int threads);

  [[nodiscard]] std::size_t threads() const noexcept { return pool_.size(); }
  [[nodiscard]] util::WorkerPool& pool() noexcept { return pool_; }

  /// One BPR step over pre-propagated representations. `tape` must hold
  /// the training-mode forward pass ending at `representation`; users/
  /// positives/negatives are parallel arrays of *entity* row ids. Runs
  /// the slot fan-out, the shared backward, and the parallel Adam step,
  /// and returns the batch loss (BPR mean + scaled L2 of the gathered
  /// rows, matching the serial objective).
  float cf_step(nn::Tape& tape, nn::Var representation,
                std::span<const std::uint32_t> users,
                std::span<const std::uint32_t> positives,
                std::span<const std::uint32_t> negatives, float l2_coefficient,
                nn::ParamStore& params, nn::AdamOptimizer& optimizer);

  /// One TransR margin step. `negative_tails` holds one presampled
  /// corrupted tail per edge of `batch` (same order). Returns the batch
  /// loss (sum of per-edge hinges / batch size, matching
  /// TransR::train_step).
  float kg_step(TransR& transr, std::span<const KgEdge> batch,
                std::span<const std::uint32_t> negative_tails,
                nn::ParamStore& params, nn::AdamOptimizer& optimizer);

 private:
  util::WorkerPool pool_;
};

}  // namespace ckat::core
