#include "core/ckat.hpp"

#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "nn/init.hpp"
#include "nn/serialize.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::core {

CkatModel::CkatModel(const graph::CollaborativeKg& ckg,
                     const graph::InteractionSet& train, CkatConfig config)
    : ckg_(ckg),
      train_(train),
      config_(std::move(config)),
      adjacency_(ckg.triples(), ckg.n_entities(), ckg.n_relations(),
                 config_.inverse_relations),
      rng_(config_.seed) {
  if (config_.layer_dims.empty()) {
    throw std::invalid_argument("CkatModel: at least one propagation layer");
  }
  if (train.n_users() != ckg.n_users() || train.n_items() != ckg.n_items()) {
    throw std::invalid_argument("CkatModel: train set does not match CKG");
  }

  util::Rng init_rng = rng_.fork(0);
  TransRConfig transr_config{.entity_dim = config_.embedding_dim,
                             .relation_dim = config_.embedding_dim,
                             .margin = config_.transr_margin};
  transr_ = std::make_unique<TransR>(params_, ckg.n_entities(),
                                     adjacency_.n_relations(), transr_config,
                                     init_rng);

  // Aggregator weights per layer: concat consumes (2*d_in), sum (d_in).
  std::size_t d_in = config_.embedding_dim;
  for (std::size_t l = 0; l < config_.layer_dims.size(); ++l) {
    const std::size_t rows =
        config_.aggregator == Aggregator::kConcat ? 2 * d_in : d_in;
    nn::Parameter& w = params_.create("ckat.W" + std::to_string(l), rows,
                                      config_.layer_dims[l]);
    nn::xavier_uniform(w.value(), init_rng);
    layer_weights_.push_back(&w);
    d_in = config_.layer_dims[l];
  }

  cf_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  kg_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  sampler_ = std::make_unique<BprSampler>(train_);

  kg_edges_.reserve(adjacency_.n_edges());
  for (std::size_t e = 0; e < adjacency_.n_edges(); ++e) {
    kg_edges_.push_back(KgEdge{adjacency_.heads()[e],
                               adjacency_.relations()[e],
                               adjacency_.tails()[e]});
  }

  refresh_propagation_matrix();
}

std::size_t CkatModel::n_users() const { return ckg_.n_users(); }
std::size_t CkatModel::n_items() const { return ckg_.n_items(); }

std::size_t CkatModel::representation_dim() const {
  return config_.embedding_dim +
         std::accumulate(config_.layer_dims.begin(), config_.layer_dims.end(),
                         std::size_t{0});
}

void CkatModel::refresh_propagation_matrix() {
  propagation_ = config_.use_attention
                     ? build_attention_matrix(adjacency_, *transr_)
                     : build_uniform_matrix(adjacency_);
}

nn::Var CkatModel::propagate(nn::Tape& tape, bool training,
                             util::Rng& dropout_rng) {
  nn::Var ego = tape.param(transr_->entity_embedding());
  nn::Var representation = ego;  // layer-0 block of e* (Eq. 10)

  nn::Var current = ego;
  for (std::size_t l = 0; l < config_.layer_dims.size(); ++l) {
    // e_Nh: attention-weighted neighborhood aggregation (Eq. 3).
    nn::Var neighborhood =
        tape.spmm_fixed(propagation_.forward, propagation_.backward, current);

    // Aggregator (Eq. 6-7).
    nn::Var combined = config_.aggregator == Aggregator::kConcat
                           ? tape.concat_cols(current, neighborhood)
                           : tape.add(current, neighborhood);
    nn::Var transformed = tape.leaky_relu(
        tape.matmul(combined, tape.param(*layer_weights_[l])));
    transformed =
        tape.dropout(transformed, config_.dropout, dropout_rng, training);

    // Per-layer L2 normalization stabilizes the concatenated scale.
    nn::Var normalized = tape.l2_normalize_rows(transformed);
    representation = tape.concat_cols(representation, normalized);
    current = normalized;
  }
  return representation;
}

float CkatModel::cf_step(util::Rng& rng) {
  const auto batch = sampler_->sample(config_.cf_batch_size, rng);

  std::vector<std::uint32_t> users, positives, negatives;
  users.reserve(batch.size());
  positives.reserve(batch.size());
  negatives.reserve(batch.size());
  for (const BprTriple& triple : batch) {
    users.push_back(ckg_.user_entity(triple.user));
    positives.push_back(ckg_.item_entity(triple.positive));
    negatives.push_back(ckg_.item_entity(triple.negative));
  }

  nn::Tape tape;
  util::Rng dropout_rng = rng.fork(17);
  nn::Var representation = propagate(tape, /*training=*/true, dropout_rng);

  nn::Var user_repr = tape.rows(representation, users);
  nn::Var pos_repr = tape.rows(representation, positives);
  nn::Var neg_repr = tape.rows(representation, negatives);

  nn::Var pos_scores = tape.sum_cols(tape.mul(user_repr, pos_repr));
  nn::Var neg_scores = tape.sum_cols(tape.mul(user_repr, neg_repr));

  // BPR (Eq. 12): mean softplus(neg - pos) = mean -ln sigma(pos - neg).
  nn::Var bpr = tape.reduce_mean(tape.softplus(tape.sub(neg_scores, pos_scores)));

  // L2 on the batch representations (the lambda * ||Theta||^2 of Eq. 13,
  // applied per-batch as in the reference implementations).
  nn::Var reg = tape.reduce_sum(tape.add(
      tape.add(tape.square(user_repr), tape.square(pos_repr)),
      tape.square(neg_repr)));
  nn::Var loss = tape.add(
      bpr,
      tape.scale(reg, config_.l2_coefficient / static_cast<float>(batch.size())));

  const float loss_value = tape.value(loss)(0, 0);
  tape.backward(loss);
  cf_optimizer_->step(params_);
  return loss_value;
}

float CkatModel::kg_step(util::Rng& rng) {
  const std::size_t batch_size =
      std::min(config_.kg_batch_size, kg_edges_.size());
  std::vector<KgEdge> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch.push_back(kg_edges_[rng.uniform_index(kg_edges_.size())]);
  }
  return transr_->train_step(batch, *kg_optimizer_, params_, rng);
}

void CkatModel::fit() {
  util::Timer timer;
  const std::size_t cf_batches =
      sampler_->batches_per_epoch(config_.cf_batch_size);
  const std::size_t kg_batches = std::max<std::size_t>(
      1, (kg_edges_.size() + config_.kg_batch_size - 1) / config_.kg_batch_size);

  history_.clear();
  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    EpochStats stats;
    for (std::size_t b = 0; b < cf_batches; ++b) {
      stats.cf_loss += cf_step(rng_);
    }
    for (std::size_t b = 0; b < kg_batches; ++b) {
      stats.kg_loss += kg_step(rng_);
    }
    stats.cf_loss /= static_cast<float>(cf_batches);
    stats.kg_loss /= static_cast<float>(kg_batches);
    history_.push_back(stats);

    // Refresh the attention coefficients from the updated TransR
    // parameters (KGAT schedule; configurable for the ablation).
    if (config_.attention_refresh_every > 0 &&
        (epoch + 1) % config_.attention_refresh_every == 0) {
      refresh_propagation_matrix();
    }

    if (config_.verbose) {
      CKAT_LOG_INFO("[CKAT] epoch %d/%d cf_loss=%.4f kg_loss=%.4f (%s)",
                    epoch + 1, config_.epochs, stats.cf_loss, stats.kg_loss,
                    util::format_duration(timer.seconds()).c_str());
    }
  }

  cache_final_representations();
  fitted_ = true;
}

void CkatModel::cache_final_representations() {
  nn::Tape tape;
  util::Rng unused(0);
  nn::Var representation = propagate(tape, /*training=*/false, unused);
  final_representations_ = tape.value(representation);
}

const nn::Tensor& CkatModel::final_representations() const {
  if (!fitted_) {
    throw std::logic_error("CkatModel: call fit() before reading representations");
  }
  return final_representations_;
}

void CkatModel::warm_start_from(const CkatModel& previous) {
  if (previous.config_.embedding_dim != config_.embedding_dim ||
      previous.config_.layer_dims != config_.layer_dims ||
      previous.config_.aggregator != config_.aggregator) {
    throw std::invalid_argument(
        "warm_start_from: architectures must match (embedding_dim, "
        "layer_dims, aggregator)");
  }

  // Entity embeddings: match by stable CKG entity name.
  std::unordered_map<std::string, std::uint32_t> previous_ids;
  previous_ids.reserve(previous.ckg_.n_entities());
  for (std::uint32_t e = 0; e < previous.ckg_.n_entities(); ++e) {
    previous_ids.emplace(previous.ckg_.entity_name(e), e);
  }
  const nn::Tensor& old_entities =
      previous.transr_->entity_embedding().value();
  nn::Tensor& new_entities = transr_->entity_embedding().value();
  std::size_t copied = 0;
  for (std::uint32_t e = 0; e < ckg_.n_entities(); ++e) {
    const auto it = previous_ids.find(ckg_.entity_name(e));
    if (it == previous_ids.end()) continue;
    auto src = old_entities.row(it->second);
    std::copy(src.begin(), src.end(), new_entities.row(e).begin());
    ++copied;
  }
  CKAT_LOG_DEBUG("warm_start_from: copied %zu/%zu entity rows", copied,
                 ckg_.n_entities());

  // Relation embeddings and projections transfer positionally for
  // relations present in both vocabularies (matched by name).
  for (std::uint32_t r = 0; r < ckg_.n_relations(); ++r) {
    const std::string& relation_name = ckg_.relations().name(r);
    const std::uint32_t old_r = previous.ckg_.relations().find(relation_name);
    if (old_r == std::numeric_limits<std::uint32_t>::max()) continue;
    // Copy both the canonical and (if both models use them) the
    // inverse-relation slots.
    auto copy_relation = [&](std::uint32_t to, std::uint32_t from) {
      if (to >= adjacency_.n_relations() ||
          from >= previous.adjacency_.n_relations()) {
        return;
      }
      auto src = previous.transr_->relation_embedding().value().row(from);
      std::copy(src.begin(), src.end(),
                transr_->relation_embedding().value().row(to).begin());
      transr_->projection(to).value() = previous.transr_->projection(from).value();
    };
    copy_relation(r, old_r);
    copy_relation(r + static_cast<std::uint32_t>(ckg_.n_relations()),
                  old_r + static_cast<std::uint32_t>(
                              previous.ckg_.n_relations()));
  }

  // Aggregator weights are shape-identical by the architecture check.
  for (std::size_t l = 0; l < layer_weights_.size(); ++l) {
    layer_weights_[l]->value() = previous.layer_weights_[l]->value();
  }
  refresh_propagation_matrix();
}

void CkatModel::save(const std::string& path) const {
  if (!fitted_) {
    throw std::logic_error("CkatModel::save: fit() or load() first");
  }
  nn::save_parameters(params_, path);
}

void CkatModel::load(const std::string& path) {
  nn::load_parameters(params_, path);
  refresh_propagation_matrix();
  cache_final_representations();
  fitted_ = true;
}

void CkatModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) {
    throw std::logic_error("CkatModel: call fit() before score_items");
  }
  if (out.size() != n_items()) {
    throw std::invalid_argument("CkatModel: output span size mismatch");
  }
  const nn::Tensor& repr = final_representations_;
  auto user_row = repr.row(ckg_.user_entity(user));
  for (std::size_t v = 0; v < n_items(); ++v) {
    auto item_row = repr.row(ckg_.item_entity(static_cast<std::uint32_t>(v)));
    float acc = 0.0f;
    for (std::size_t c = 0; c < user_row.size(); ++c) {
      acc += user_row[c] * item_row[c];
    }
    out[v] = acc;
  }
}

}  // namespace ckat::core
