#include "core/ckat.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "nn/init.hpp"
#include "nn/kernels.hpp"
#include "nn/serialize.hpp"
#include "obs/metric_names.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/contract.hpp"
#include "util/fault.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace ckat::core {

namespace {

/// Registry handles for the training loop, resolved once. Histogram
/// observations are guarded with obs::telemetry_enabled() at the call
/// sites so a disabled run (CKAT_OBS=0) pays only the branch -- that is
/// the baseline the overhead measurement in bench/ext_observability
/// compares against.
struct TrainTelemetry {
  obs::Histogram& cf_step_seconds;
  obs::Histogram& kg_step_seconds;
  obs::Histogram& epoch_seconds;
  obs::Gauge& last_cf_loss;
  obs::Gauge& last_kg_loss;
  obs::Gauge& epochs_completed;
  obs::Gauge& lr_scale;
  obs::Counter& checkpoint_writes;
  obs::Counter& checkpoint_write_failures;
  obs::Counter& rollbacks;
  obs::Counter& nonfinite_epochs;

  static TrainTelemetry& instance() {
    auto& r = obs::MetricsRegistry::global();
    namespace names = obs::metric_names;
    static TrainTelemetry t{
        r.histogram(names::kTrainCfStepSeconds),
        r.histogram(names::kTrainKgStepSeconds),
        r.histogram(names::kTrainEpochSeconds),
        r.gauge(names::kTrainLastCfLoss),
        r.gauge(names::kTrainLastKgLoss),
        r.gauge(names::kTrainEpochsCompleted),
        r.gauge(names::kTrainLrScale),
        r.counter(names::kTrainCheckpointWritesTotal),
        r.counter(names::kTrainCheckpointWriteFailuresTotal),
        r.counter(names::kTrainRollbacksTotal),
        r.counter(names::kTrainNonfiniteEpochsTotal),
    };
    return t;
  }
};

}  // namespace

CkatModel::CkatModel(const graph::CollaborativeKg& ckg,
                     const graph::InteractionSet& train, CkatConfig config)
    : ckg_(ckg),
      train_(train),
      config_(std::move(config)),
      adjacency_(ckg.triples(), ckg.n_entities(), ckg.n_relations(),
                 config_.inverse_relations),
      rng_(config_.seed) {
  if (config_.layer_dims.empty()) {
    throw std::invalid_argument("CkatModel: at least one propagation layer");
  }
  if (train.n_users() != ckg.n_users() || train.n_items() != ckg.n_items()) {
    throw std::invalid_argument("CkatModel: train set does not match CKG");
  }

  util::Rng init_rng = rng_.fork(0);
  TransRConfig transr_config{.entity_dim = config_.embedding_dim,
                             .relation_dim = config_.embedding_dim,
                             .margin = config_.transr_margin};
  transr_ = std::make_unique<TransR>(params_, ckg.n_entities(),
                                     adjacency_.n_relations(), transr_config,
                                     init_rng);

  // Aggregator weights per layer: concat consumes (2*d_in), sum (d_in).
  std::size_t d_in = config_.embedding_dim;
  for (std::size_t l = 0; l < config_.layer_dims.size(); ++l) {
    const std::size_t rows =
        config_.aggregator == Aggregator::kConcat ? 2 * d_in : d_in;
    nn::Parameter& w = params_.create("ckat.W" + std::to_string(l), rows,
                                      config_.layer_dims[l]);
    nn::xavier_uniform(w.value(), init_rng);
    layer_weights_.push_back(&w);
    d_in = config_.layer_dims[l];
  }

  cf_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  kg_optimizer_ = std::make_unique<nn::AdamOptimizer>(config_.learning_rate);
  // Resolve the training-engine knobs once so the whole run (and its
  // checkpoints) sees one consistent batch size and thread count.
  config_.train_threads = resolve_train_threads(config_.train_threads);
  config_.train_batch =
      resolve_train_batch(config_.train_batch, config_.cf_batch_size);
  trainer_ = std::make_unique<MinibatchTrainer>(config_.train_threads);
  sampler_ = std::make_unique<BprSampler>(train_);

  kg_edges_.reserve(adjacency_.n_edges());
  for (std::size_t e = 0; e < adjacency_.n_edges(); ++e) {
    kg_edges_.push_back(KgEdge{adjacency_.heads()[e],
                               adjacency_.relations()[e],
                               adjacency_.tails()[e]});
  }

  refresh_propagation_matrix();
}

std::size_t CkatModel::n_users() const { return ckg_.n_users(); }
std::size_t CkatModel::n_items() const { return ckg_.n_items(); }

std::size_t CkatModel::representation_dim() const {
  return config_.embedding_dim +
         std::accumulate(config_.layer_dims.begin(), config_.layer_dims.end(),
                         std::size_t{0});
}

void CkatModel::refresh_propagation_matrix() {
  propagation_ = config_.use_attention
                     ? build_attention_matrix(adjacency_, *transr_)
                     : build_uniform_matrix(adjacency_);
}

nn::Var CkatModel::propagate(nn::Tape& tape, bool training,
                             util::Rng& dropout_rng) {
  obs::TraceSpan span("ckat.propagate");
  nn::Var ego = tape.param(transr_->entity_embedding());
  nn::Var representation = ego;  // layer-0 block of e* (Eq. 10)

  nn::Var current = ego;
  for (std::size_t l = 0; l < config_.layer_dims.size(); ++l) {
    // e_Nh: attention-weighted neighborhood aggregation (Eq. 3).
    nn::Var neighborhood =
        tape.spmm_fixed(propagation_.forward, propagation_.backward, current);

    // Aggregator (Eq. 6-7).
    nn::Var combined = config_.aggregator == Aggregator::kConcat
                           ? tape.concat_cols(current, neighborhood)
                           : tape.add(current, neighborhood);
    nn::Var transformed = tape.leaky_relu(
        tape.matmul(combined, tape.param(*layer_weights_[l])));
    transformed =
        tape.dropout(transformed, config_.dropout, dropout_rng, training);

    // Per-layer L2 normalization stabilizes the concatenated scale.
    nn::Var normalized = tape.l2_normalize_rows(transformed);
    representation = tape.concat_cols(representation, normalized);
    current = normalized;
  }
  return representation;
}

float CkatModel::cf_step(util::Rng& rng) {
  // BPR sampling and the dropout fork consume the serial RNG stream
  // exactly as the legacy loop did, so checkpoint resume replays the
  // same batches at any thread count.
  const auto batch = sampler_->sample(config_.train_batch, rng);

  std::vector<std::uint32_t> users, positives, negatives;
  users.reserve(batch.size());
  positives.reserve(batch.size());
  negatives.reserve(batch.size());
  for (const BprTriple& triple : batch) {
    users.push_back(ckg_.user_entity(triple.user));
    positives.push_back(ckg_.item_entity(triple.positive));
    negatives.push_back(ckg_.item_entity(triple.negative));
  }

  nn::Tape tape;
  util::Rng dropout_rng = rng.fork(17);
  nn::Var representation = propagate(tape, /*training=*/true, dropout_rng);

  // Slot fan-out over the pairs, shared backward through the
  // propagation stack, slot-ordered parallel Adam (Eq. 12-13; see
  // trainer.hpp for the determinism contract).
  const float loss_value = trainer_->cf_step(
      tape, representation, users, positives, negatives,
      config_.l2_coefficient, params_, *cf_optimizer_);

  // Fault-injection hook: simulates the NaN gradients a real divergence
  // produces, so the rollback path is testable on demand.
  auto& injector = util::FaultInjector::instance();
  if (injector.enabled() &&
      injector.should_fire(util::fault_points::kNanLoss)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  return loss_value;
}

float CkatModel::kg_step(util::Rng& rng) {
  const std::size_t batch_size =
      std::min(config_.kg_batch_size, kg_edges_.size());
  std::vector<KgEdge> batch;
  batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    batch.push_back(kg_edges_[rng.uniform_index(kg_edges_.size())]);
  }
  // Corrupted tails (Eq. 2's S') are presampled here, in batch order,
  // so the RNG stream stays serial no matter how the trainer shards
  // the edges across workers.
  std::vector<std::uint32_t> negative_tails;
  negative_tails.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    negative_tails.push_back(
        static_cast<std::uint32_t>(rng.uniform_index(ckg_.n_entities())));
  }
  return trainer_->kg_step(*transr_, batch, negative_tails, params_,
                           *kg_optimizer_);
}

void CkatModel::fit() {
  util::Timer timer;
  const std::size_t cf_batches =
      sampler_->batches_per_epoch(config_.train_batch);
  const std::size_t kg_batches = std::max<std::size_t>(
      1, (kg_edges_.size() + config_.kg_batch_size - 1) / config_.kg_batch_size);
  const bool checkpointing =
      config_.checkpoint_every > 0 && !config_.checkpoint_path.empty();
  const bool telemetry = obs::telemetry_enabled();
  TrainTelemetry& tele = TrainTelemetry::instance();
  obs::TraceSpan fit_span(
      "ckat.fit", {{"epochs", std::to_string(config_.epochs)},
                   {"cf_batches", std::to_string(cf_batches)},
                   {"kg_batches", std::to_string(kg_batches)}});

  history_.clear();
  rollbacks_ = 0;
  // An epoch-0 checkpoint guarantees a rollback target even when the
  // very first epochs diverge.
  if (checkpointing && start_epoch_ == 0) {
    write_checkpoint(0);
  }
  const int first_epoch = start_epoch_;
  int epoch = start_epoch_;
  while (epoch < config_.epochs) {
    obs::TraceSpan epoch_span("ckat.epoch",
                              {{"epoch", std::to_string(epoch + 1)}});
    util::Timer epoch_timer;
    EpochStats stats;
    {
      obs::TraceSpan cf_span("ckat.cf_phase");
      for (std::size_t b = 0; b < cf_batches; ++b) {
        util::Timer step_timer;
        stats.cf_loss += cf_step(rng_);
        if (telemetry) tele.cf_step_seconds.observe(step_timer.seconds());
      }
    }
    {
      obs::TraceSpan kg_span("ckat.kg_phase");
      for (std::size_t b = 0; b < kg_batches; ++b) {
        util::Timer step_timer;
        stats.kg_loss += kg_step(rng_);
        if (telemetry) tele.kg_step_seconds.observe(step_timer.seconds());
      }
    }
    stats.cf_loss /= static_cast<float>(cf_batches);
    stats.kg_loss /= static_cast<float>(kg_batches);
    if (telemetry) {
      tele.epoch_seconds.observe(epoch_timer.seconds());
      tele.last_cf_loss.set(stats.cf_loss);
      tele.last_kg_loss.set(stats.kg_loss);
    }

    if (!std::isfinite(stats.cf_loss) || !std::isfinite(stats.kg_loss)) {
      tele.nonfinite_epochs.inc();
      // Compound the reduction across successive rollbacks (restoring
      // the checkpoint resets lr_scale_ to the value it was saved with).
      const float reduced_scale = lr_scale_ * config_.rollback_lr_factor;
      if (checkpointing && rollbacks_ < config_.max_rollbacks &&
          try_rollback()) {
        ++rollbacks_;
        apply_lr_scale(reduced_scale);
        tele.rollbacks.inc();
        if (telemetry) tele.lr_scale.set(lr_scale_);
        obs::trace_event(
            "ckat.rollback",
            {{"failed_epoch", std::to_string(epoch + 1)},
             {"resumed_epoch", std::to_string(start_epoch_)},
             {"rollback", std::to_string(rollbacks_)},
             {"lr_scale", std::to_string(lr_scale_)}});
        CKAT_LOG_WARN(
            "[CKAT] non-finite loss at epoch %d; rolled back to epoch %d "
            "(rollback %d/%d, lr scale %.3g)",
            epoch + 1, start_epoch_, rollbacks_, config_.max_rollbacks,
            lr_scale_);
        epoch = start_epoch_;
        // Drop the history entries of the epochs being replayed.
        history_.resize(static_cast<std::size_t>(
            std::max(0, start_epoch_ - first_epoch)));
        continue;
      }
      if (checkpointing) {
        throw std::runtime_error(
            "CkatModel::fit: training diverged (non-finite loss) and no "
            "rollback budget or usable checkpoint remains");
      }
      // Legacy behaviour without checkpointing: record the bad epoch and
      // keep going, as before this feature existed.
    }

    history_.push_back(stats);

    // Refresh the attention coefficients from the updated TransR
    // parameters (KGAT schedule; configurable for the ablation).
    if (config_.attention_refresh_every > 0 &&
        (epoch + 1) % config_.attention_refresh_every == 0) {
      refresh_propagation_matrix();
    }

    if (config_.verbose) {
      CKAT_LOG_INFO("[CKAT] epoch %d/%d cf_loss=%.4f kg_loss=%.4f (%s)",
                    epoch + 1, config_.epochs, stats.cf_loss, stats.kg_loss,
                    util::format_duration(timer.seconds()).c_str());
    }

    ++epoch;
    if (telemetry) tele.epochs_completed.set(epoch);
    if (checkpointing && epoch % config_.checkpoint_every == 0) {
      write_checkpoint(epoch);
    }
  }

  start_epoch_ = 0;
  cache_final_representations();

#if defined(CKAT_VALIDATE)
  // Post-fit boundary: the cached representations feed every score()
  // call; a NaN that slipped past the divergence-rollback guard would
  // otherwise poison serving silently.
  {
    const float* data = final_representations_.data();
    std::size_t bad = final_representations_.size();
    for (std::size_t i = 0; i < final_representations_.size(); ++i) {
      if (!std::isfinite(data[i])) {
        bad = i;
        break;
      }
    }
    CKAT_CHECK_INVARIANT(
        bad == final_representations_.size(),
        "non-finite final representation at flat index " +
            std::to_string(bad));
  }
#endif
  fitted_ = true;
}

nn::TrainingCheckpoint CkatModel::make_checkpoint(int epoch) const {
  nn::TrainingCheckpoint checkpoint;
  checkpoint.epoch = epoch;
  checkpoint.cf_steps = cf_optimizer_->step_count();
  checkpoint.kg_steps = kg_optimizer_->step_count();
  checkpoint.rng_state = rng_.state();
  checkpoint.lr_scale = lr_scale_;
  checkpoint.capture(params_);
  return checkpoint;
}

void CkatModel::restore_checkpoint(const nn::TrainingCheckpoint& checkpoint) {
  checkpoint.restore(params_);
  cf_optimizer_->set_step_count(checkpoint.cf_steps);
  kg_optimizer_->set_step_count(checkpoint.kg_steps);
  rng_.set_state(checkpoint.rng_state);
  apply_lr_scale(checkpoint.lr_scale);
  start_epoch_ = checkpoint.epoch;
  refresh_propagation_matrix();
}

void CkatModel::resume_from(const std::string& path) {
  restore_checkpoint(nn::load_checkpoint(path));
}

void CkatModel::apply_lr_scale(float scale) {
  lr_scale_ = scale;
  cf_optimizer_->set_learning_rate(config_.learning_rate * scale);
  kg_optimizer_->set_learning_rate(config_.learning_rate * scale);
}

void CkatModel::write_checkpoint(int epoch) {
  const std::string& path = config_.checkpoint_path;
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    std::filesystem::rename(path, path + ".prev", ec);
    if (ec) {
      CKAT_LOG_WARN("[CKAT] checkpoint rotation failed: %s",
                    ec.message().c_str());
    }
  }
  try {
    nn::save_checkpoint(make_checkpoint(epoch), path);
    TrainTelemetry::instance().checkpoint_writes.inc();
    obs::trace_event("ckat.checkpoint_write",
                     {{"epoch", std::to_string(epoch)}});
    CKAT_LOG_DEBUG("[CKAT] checkpoint written at epoch %d -> %s", epoch,
                   path.c_str());
  } catch (const std::exception& e) {
    // A failed checkpoint write must not kill a healthy training run;
    // the rotated previous checkpoint remains the rollback target.
    TrainTelemetry::instance().checkpoint_write_failures.inc();
    obs::trace_event("ckat.checkpoint_write_failed",
                     {{"epoch", std::to_string(epoch)}, {"error", e.what()}});
    CKAT_LOG_WARN("[CKAT] checkpoint write failed at epoch %d: %s", epoch,
                  e.what());
  }
}

bool CkatModel::try_rollback() {
  for (const std::string& candidate :
       {config_.checkpoint_path, config_.checkpoint_path + ".prev"}) {
    std::error_code ec;
    if (!std::filesystem::exists(candidate, ec)) continue;
    try {
      restore_checkpoint(nn::load_checkpoint(candidate));
      return true;
    } catch (const std::exception& e) {
      CKAT_LOG_WARN("[CKAT] rollback candidate %s unusable: %s",
                    candidate.c_str(), e.what());
    }
  }
  // No checkpoint survived; restart from epoch 0 is not attempted here
  // because the parameters are already poisoned.
  return false;
}

void CkatModel::cache_final_representations() {
  nn::Tape tape;
  util::Rng unused(0);
  nn::Var representation = propagate(tape, /*training=*/false, unused);
  final_representations_ = tape.value(representation);
}

const nn::Tensor& CkatModel::final_representations() const {
  if (!fitted_) {
    throw std::logic_error("CkatModel: call fit() before reading representations");
  }
  return final_representations_;
}

void CkatModel::warm_start_from(const CkatModel& previous) {
  if (previous.config_.embedding_dim != config_.embedding_dim ||
      previous.config_.layer_dims != config_.layer_dims ||
      previous.config_.aggregator != config_.aggregator) {
    throw std::invalid_argument(
        "warm_start_from: architectures must match (embedding_dim, "
        "layer_dims, aggregator)");
  }

  // Entity embeddings: match by stable CKG entity name.
  std::unordered_map<std::string, std::uint32_t> previous_ids;
  previous_ids.reserve(previous.ckg_.n_entities());
  for (std::uint32_t e = 0; e < previous.ckg_.n_entities(); ++e) {
    previous_ids.emplace(previous.ckg_.entity_name(e), e);
  }
  const nn::Tensor& old_entities =
      previous.transr_->entity_embedding().value();
  nn::Tensor& new_entities = transr_->entity_embedding().value();
  std::size_t copied = 0;
  for (std::uint32_t e = 0; e < ckg_.n_entities(); ++e) {
    const auto it = previous_ids.find(ckg_.entity_name(e));
    if (it == previous_ids.end()) continue;
    auto src = old_entities.row(it->second);
    std::copy(src.begin(), src.end(), new_entities.row(e).begin());
    ++copied;
  }
  CKAT_LOG_DEBUG("warm_start_from: copied %zu/%zu entity rows", copied,
                 ckg_.n_entities());

  // Relation embeddings and projections transfer positionally for
  // relations present in both vocabularies (matched by name).
  for (std::uint32_t r = 0; r < ckg_.n_relations(); ++r) {
    const std::string& relation_name = ckg_.relations().name(r);
    const std::uint32_t old_r = previous.ckg_.relations().find(relation_name);
    if (old_r == std::numeric_limits<std::uint32_t>::max()) continue;
    // Copy both the canonical and (if both models use them) the
    // inverse-relation slots.
    auto copy_relation = [&](std::uint32_t to, std::uint32_t from) {
      if (to >= adjacency_.n_relations() ||
          from >= previous.adjacency_.n_relations()) {
        return;
      }
      auto src = previous.transr_->relation_embedding().value().row(from);
      std::copy(src.begin(), src.end(),
                transr_->relation_embedding().value().row(to).begin());
      transr_->projection(to).value() = previous.transr_->projection(from).value();
    };
    copy_relation(r, old_r);
    copy_relation(r + static_cast<std::uint32_t>(ckg_.n_relations()),
                  old_r + static_cast<std::uint32_t>(
                              previous.ckg_.n_relations()));
  }

  // Aggregator weights are shape-identical by the architecture check.
  for (std::size_t l = 0; l < layer_weights_.size(); ++l) {
    layer_weights_[l]->value() = previous.layer_weights_[l]->value();
  }
  refresh_propagation_matrix();
}

namespace {

/// Indexes a checkpoint's tensors by name; throws a clear error when a
/// required tensor is absent.
class CheckpointIndex {
 public:
  explicit CheckpointIndex(const nn::TrainingCheckpoint& checkpoint) {
    for (const nn::TensorSnapshot& t : checkpoint.tensors) {
      by_name_.emplace(t.name, &t);
    }
  }
  [[nodiscard]] const nn::TensorSnapshot& require(
      const std::string& name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) {
      throw std::runtime_error(
          "warm_start_from_checkpoint: checkpoint has no tensor '" + name +
          "'");
    }
    return *it->second;
  }

 private:
  std::unordered_map<std::string, const nn::TensorSnapshot*> by_name_;
};

/// Copies snapshot row `from` into parameter row `to` — value and, when
/// the snapshot carried optimizer moments, the Adam moment rows too
/// (allocating zeroed moment tensors on first use so untouched new rows
/// start the refresh with fresh moments).
void transfer_row(nn::Parameter& p, const nn::TensorSnapshot& snapshot,
                  std::uint32_t to, std::uint32_t from) {
  auto src = snapshot.value.row(from);
  std::copy(src.begin(), src.end(), p.value().row(to).begin());
  if (snapshot.opt_m.empty()) return;
  if (p.opt_m.empty()) {
    p.opt_m.resize_zeroed(p.rows(), p.cols());
    p.opt_v.resize_zeroed(p.rows(), p.cols());
  }
  auto m = snapshot.opt_m.row(from);
  std::copy(m.begin(), m.end(), p.opt_m.row(to).begin());
  auto v = snapshot.opt_v.row(from);
  std::copy(v.begin(), v.end(), p.opt_v.row(to).begin());
}

/// Whole-tensor transfer for shape-stable parameters (projections,
/// aggregator weights).
void transfer_tensor(nn::Parameter& p, const nn::TensorSnapshot& snapshot) {
  if (!snapshot.value.same_shape(p.value())) {
    throw std::runtime_error(
        "warm_start_from_checkpoint: shape mismatch for '" + snapshot.name +
        "' (" + std::to_string(snapshot.value.rows()) + " x " +
        std::to_string(snapshot.value.cols()) + " in the checkpoint, " +
        std::to_string(p.rows()) + " x " + std::to_string(p.cols()) +
        " here)");
  }
  p.value() = snapshot.value;
  if (!snapshot.opt_m.empty()) {
    p.opt_m = snapshot.opt_m;
    p.opt_v = snapshot.opt_v;
  }
}

}  // namespace

void CkatModel::warm_start_from_checkpoint(
    const nn::TrainingCheckpoint& checkpoint,
    const graph::CollaborativeKg& previous_ckg) {
  constexpr std::uint32_t kAbsent = 0xFFFFFFFFu;
  const CheckpointIndex index(checkpoint);

  // -- Entity table. The checkpoint must describe previous_ckg exactly,
  // and the stream contract is append-only: a checkpoint with more
  // entities than this model's vocabulary would silently truncate the
  // model it claims to resume, so it is rejected loudly instead.
  const nn::TensorSnapshot& entities = index.require("transr.entity");
  if (entities.value.rows() != previous_ckg.n_entities()) {
    throw std::runtime_error(
        "warm_start_from_checkpoint: checkpoint entity table has " +
        std::to_string(entities.value.rows()) +
        " rows but the previous CKG has " +
        std::to_string(previous_ckg.n_entities()) + " entities");
  }
  if (entities.value.rows() > ckg_.n_entities()) {
    throw std::runtime_error(
        "warm_start_from_checkpoint: checkpoint entity count (" +
        std::to_string(entities.value.rows()) +
        ") exceeds the current vocabulary (" +
        std::to_string(ckg_.n_entities()) +
        "); refusing to truncate — the stream contract is append-only");
  }
  if (entities.value.cols() != config_.embedding_dim) {
    throw std::runtime_error(
        "warm_start_from_checkpoint: embedding_dim mismatch (checkpoint " +
        std::to_string(entities.value.cols()) + ", model " +
        std::to_string(config_.embedding_dim) + ")");
  }
  nn::Parameter& entity_param = transr_->entity_embedding();
  for (std::uint32_t e = 0; e < previous_ckg.n_entities(); ++e) {
    const std::uint32_t target = ckg_.find_entity(previous_ckg.entity_name(e));
    if (target == kAbsent) {
      throw std::runtime_error(
          "warm_start_from_checkpoint: entity '" +
          previous_ckg.entity_name(e) +
          "' from the checkpoint is missing from the current CKG "
          "(streams are append-only; refusing a lossy warm start)");
    }
    transfer_row(entity_param, entities, target, e);
  }

  // -- Relations. Rows (and projection indices) follow the augmented
  // layout [canonical | inverse]; the inverse slot of relation r sits at
  // r + n_relations, which shifts when the vocabulary grows — map both
  // slots by name.
  const nn::TensorSnapshot& relations = index.require("transr.relation");
  const auto prev_n_relations =
      static_cast<std::uint32_t>(previous_ckg.n_relations());
  const auto n_relations = static_cast<std::uint32_t>(ckg_.n_relations());
  const bool inverses =
      adjacency_.n_relations() == 2 * static_cast<std::size_t>(n_relations);
  if (relations.value.rows() !=
      static_cast<std::size_t>(prev_n_relations) * (inverses ? 2 : 1)) {
    throw std::runtime_error(
        "warm_start_from_checkpoint: relation table has " +
        std::to_string(relations.value.rows()) + " rows but the previous "
        "CKG implies " +
        std::to_string(prev_n_relations * (inverses ? 2 : 1)));
  }
  nn::Parameter& relation_param = transr_->relation_embedding();
  for (std::uint32_t r = 0; r < prev_n_relations; ++r) {
    const std::uint32_t target =
        ckg_.relations().find(previous_ckg.relations().name(r));
    if (target == kAbsent) {
      throw std::runtime_error(
          "warm_start_from_checkpoint: relation '" +
          previous_ckg.relations().name(r) +
          "' from the checkpoint is missing from the current CKG");
    }
    transfer_row(relation_param, relations, target, r);
    transfer_tensor(transr_->projection(target),
                    index.require("transr.W" + std::to_string(r)));
    if (inverses) {
      transfer_row(relation_param, relations, target + n_relations,
                   r + prev_n_relations);
      transfer_tensor(
          transr_->projection(target + n_relations),
          index.require("transr.W" + std::to_string(r + prev_n_relations)));
    }
  }

  // -- Aggregator weights are shape-stable across graph growth.
  for (std::size_t l = 0; l < layer_weights_.size(); ++l) {
    transfer_tensor(*layer_weights_[l],
                    index.require("ckat.W" + std::to_string(l)));
  }

  // -- Optimizer trajectory: the refresh continues the run instead of
  // restarting Adam's bias correction from step 0.
  cf_optimizer_->set_step_count(checkpoint.cf_steps);
  kg_optimizer_->set_step_count(checkpoint.kg_steps);
  rng_.set_state(checkpoint.rng_state);
  apply_lr_scale(checkpoint.lr_scale);
  start_epoch_ = 0;
  refresh_propagation_matrix();
}

void CkatModel::refresh_fit(int epochs) {
  if (epochs < 0) {
    throw std::invalid_argument("refresh_fit: epochs must be >= 0");
  }
  // Bounded pass: run exactly `epochs` epochs from the current
  // parameters. Periodic checkpointing is suppressed — the refresher
  // publishes a checkpoint only for models that pass the guardrail.
  const int saved_epochs = config_.epochs;
  const int saved_checkpoint_every = config_.checkpoint_every;
  config_.epochs = epochs;
  config_.checkpoint_every = 0;
  start_epoch_ = 0;
  try {
    fit();
  } catch (...) {
    config_.epochs = saved_epochs;
    config_.checkpoint_every = saved_checkpoint_every;
    throw;
  }
  config_.epochs = saved_epochs;
  config_.checkpoint_every = saved_checkpoint_every;
}

void CkatModel::save(const std::string& path) const {
  if (!fitted_) {
    throw std::logic_error("CkatModel::save: fit() or load() first");
  }
  nn::save_parameters(params_, path);
}

void CkatModel::load(const std::string& path) {
  nn::load_parameters(params_, path);
  refresh_propagation_matrix();
  cache_final_representations();
  fitted_ = true;
}

void CkatModel::score_items(std::uint32_t user, std::span<float> out) const {
  if (!fitted_) {
    throw std::logic_error("CkatModel: call fit() before score_items");
  }
  if (out.size() != n_items()) {
    throw std::invalid_argument("CkatModel: output span size mismatch");
  }
  const nn::Tensor& repr = final_representations_;
  auto user_row = repr.row(ckg_.user_entity(user));
  for (std::size_t v = 0; v < n_items(); ++v) {
    auto item_row = repr.row(ckg_.item_entity(static_cast<std::uint32_t>(v)));
    float acc = 0.0f;
    for (std::size_t c = 0; c < user_row.size(); ++c) {
      acc += user_row[c] * item_row[c];
    }
    out[v] = acc;
  }
}

void CkatModel::score_batch(std::span<const std::uint32_t> users,
                            std::span<float> out) const {
  if (!fitted_) {
    throw std::logic_error("CkatModel: call fit() before score_batch");
  }
  if (out.size() != users.size() * n_items()) {
    throw std::invalid_argument("CkatModel: output span size mismatch");
  }
  const nn::Tensor& repr = final_representations_;
  const std::size_t dim = repr.cols();
  // Gather the user rows into a dense block. The item rows need no
  // gather: the entity layout puts all items contiguously right after
  // the users, so the item panel is a view into e* itself.
  std::vector<float> user_block(users.size() * dim);
  for (std::size_t i = 0; i < users.size(); ++i) {
    const auto user_row = repr.row(ckg_.user_entity(users[i]));
    std::copy(user_row.begin(), user_row.end(),
              user_block.begin() + static_cast<std::ptrdiff_t>(i * dim));
  }
  const std::span<const float> item_panel{
      repr.data() + static_cast<std::size_t>(ckg_.item_entity(0)) * dim,
      n_items() * dim};
  nn::gemm_nt_into(user_block, users.size(), dim, item_panel, n_items(), out);
}

}  // namespace ckat::core
