#include "core/trainer.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "nn/kernels.hpp"
#include "util/env.hpp"

namespace ckat::core {

int resolve_train_threads(int requested) {
  if (requested > 0) return std::min(requested, 64);
  return static_cast<int>(util::env_int("CKAT_TRAIN_THREADS", 1, 1, 64));
}

std::size_t resolve_train_batch(std::size_t requested, std::size_t fallback) {
  constexpr long long kMaxBatch = 1LL << 20;
  if (requested > 0) {
    return std::min<std::size_t>(requested, kMaxBatch);
  }
  return static_cast<std::size_t>(
      util::env_int("CKAT_TRAIN_BATCH", static_cast<long long>(fallback), 1,
                    kMaxBatch));
}

namespace {

// Slot widths: big enough that the per-slot tape amortizes, small
// enough that a 4-thread pool balances even modest batches. Fixed
// constants, never derived from the thread count -- the partition is
// part of the deterministic contract.
constexpr std::size_t kCfSlotPairs = 32;
constexpr std::size_t kKgSlotEdges = 64;

// Gathers `ids` rows of `src` into a dense (ids.size(), src.cols())
// block.
nn::Tensor gather_rows(const nn::Tensor& src,
                       std::span<const std::uint32_t> ids) {
  nn::Tensor out(ids.size(), src.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto row = src.row(ids[i]);
    std::copy(row.begin(), row.end(), out.row(i).begin());
  }
  return out;
}

// A slot backward that never saw a live gradient (fully inactive hinge)
// may leave a leaf without a grad tensor; treat that as zeros.
nn::Tensor grad_or_zero(const nn::Tape& tape, nn::Var v, std::size_t rows,
                        std::size_t cols) {
  try {
    return tape.grad(v);
  } catch (const std::logic_error&) {
    return nn::Tensor(rows, cols);
  }
}

}  // namespace

MinibatchTrainer::MinibatchTrainer(int threads)
    : pool_(static_cast<std::size_t>(resolve_train_threads(threads))) {}

float MinibatchTrainer::cf_step(nn::Tape& tape, nn::Var representation,
                                std::span<const std::uint32_t> users,
                                std::span<const std::uint32_t> positives,
                                std::span<const std::uint32_t> negatives,
                                float l2_coefficient, nn::ParamStore& params,
                                nn::AdamOptimizer& optimizer) {
  const std::size_t batch = users.size();
  if (positives.size() != batch || negatives.size() != batch) {
    throw std::invalid_argument("cf_step: id arrays must be parallel");
  }
  if (batch == 0) return 0.0f;

  const nn::Tensor& rep = tape.value(representation);
  const float inv_batch = 1.0f / static_cast<float>(batch);
  const std::size_t n_slots = (batch + kCfSlotPairs - 1) / kCfSlotPairs;

  struct CfSlot {
    double loss = 0.0;
    nn::Tensor gu, gp, gn;  // d loss / d gathered rows
  };
  std::vector<CfSlot> slots(n_slots);

  // Workers read the shared representation value (immutable during the
  // fan-out) and write only their own slot's entry.
  pool_.run([&](std::size_t worker) {
    for (std::size_t s = worker; s < n_slots; s += pool_.size()) {
      const std::size_t begin = s * kCfSlotPairs;
      const std::size_t size = std::min(kCfSlotPairs, batch - begin);
      nn::Tape st;
      const nn::Var u = st.input(gather_rows(rep, users.subspan(begin, size)));
      const nn::Var p =
          st.input(gather_rows(rep, positives.subspan(begin, size)));
      const nn::Var n =
          st.input(gather_rows(rep, negatives.subspan(begin, size)));

      const nn::Var pos_scores = st.sum_cols(st.mul(u, p));
      const nn::Var neg_scores = st.sum_cols(st.mul(u, n));
      // Slot share of the batch objective: softplus terms carry the
      // 1/B of the BPR mean, the L2 term the lambda/B of Eq. 13.
      const nn::Var bpr = st.scale(
          st.reduce_sum(st.softplus(st.sub(neg_scores, pos_scores))),
          inv_batch);
      const nn::Var reg = st.scale(
          st.reduce_sum(
              st.add(st.add(st.square(u), st.square(p)), st.square(n))),
          l2_coefficient * inv_batch);
      const nn::Var loss = st.add(bpr, reg);

      CfSlot& out = slots[s];
      out.loss = static_cast<double>(st.value(loss)(0, 0));
      st.backward(loss);
      out.gu = grad_or_zero(st, u, size, rep.cols());
      out.gp = grad_or_zero(st, p, size, rep.cols());
      out.gn = grad_or_zero(st, n, size, rep.cols());
    }
  });

  // Slot-ordered reduction: the scatter below and the loss sum are the
  // only cross-slot floating-point operations, and both run serially in
  // slot order, so the thread count cannot change a bit of either.
  double total_loss = 0.0;
  nn::Tensor seed(rep.rows(), rep.cols());
  for (std::size_t s = 0; s < n_slots; ++s) {
    const std::size_t begin = s * kCfSlotPairs;
    const std::size_t size = std::min(kCfSlotPairs, batch - begin);
    const CfSlot& slot = slots[s];
    total_loss += slot.loss;
    for (std::size_t i = 0; i < size; ++i) {
      auto src = slot.gu.row(i);
      auto dst = seed.row(users[begin + i]);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
    }
    for (std::size_t i = 0; i < size; ++i) {
      auto src = slot.gp.row(i);
      auto dst = seed.row(positives[begin + i]);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
    }
    for (std::size_t i = 0; i < size; ++i) {
      auto src = slot.gn.row(i);
      auto dst = seed.row(negatives[begin + i]);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += src[c];
    }
  }

  // One shared backward through the propagation stack, then the
  // slot-ordered parallel Adam.
  tape.backward_seeded(representation, seed);
  optimizer.step(params, pool_);
  return static_cast<float>(total_loss);
}

float MinibatchTrainer::kg_step(TransR& transr, std::span<const KgEdge> batch,
                                std::span<const std::uint32_t> negative_tails,
                                nn::ParamStore& params,
                                nn::AdamOptimizer& optimizer) {
  if (negative_tails.size() != batch.size()) {
    throw std::invalid_argument(
        "kg_step: one presampled negative tail per edge");
  }
  if (batch.empty()) return 0.0f;

  // Relation-major stable order: edges sharing W_r become contiguous,
  // ties keep sample order. The slot partition derives from this order
  // alone.
  std::vector<std::uint32_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return batch[a].relation < batch[b].relation;
                   });

  struct KgSlot {
    std::uint32_t relation = 0;
    std::vector<std::uint32_t> heads, tails, negs;
    double loss = 0.0;
    nn::Tensor gw, ge, gh, gt, gn;
  };
  std::vector<KgSlot> slots;
  std::size_t group_begin = 0;
  while (group_begin < order.size()) {
    const std::uint32_t r = batch[order[group_begin]].relation;
    std::size_t group_end = group_begin;
    while (group_end < order.size() &&
           batch[order[group_end]].relation == r) {
      ++group_end;
    }
    for (std::size_t s0 = group_begin; s0 < group_end; s0 += kKgSlotEdges) {
      const std::size_t s1 = std::min(group_end, s0 + kKgSlotEdges);
      KgSlot slot;
      slot.relation = r;
      for (std::size_t i = s0; i < s1; ++i) {
        const KgEdge& edge = batch[order[i]];
        slot.heads.push_back(edge.head);
        slot.tails.push_back(edge.tail);
        slot.negs.push_back(negative_tails[order[i]]);
      }
      slots.push_back(std::move(slot));
    }
    group_begin = group_end;
  }

  const nn::Tensor& entities = transr.entity_embedding().value();
  const nn::Tensor& relations = transr.relation_embedding().value();
  const float margin = transr.config().margin;
  const float inv_batch = 1.0f / static_cast<float>(batch.size());

  pool_.run([&](std::size_t worker) {
    for (std::size_t s = worker; s < slots.size(); s += pool_.size()) {
      KgSlot& slot = slots[s];
      const nn::Tensor& w_value =
          transr.projection(slot.relation).value();
      nn::Tensor e_row(1, relations.cols());
      {
        auto src = relations.row(slot.relation);
        std::copy(src.begin(), src.end(), e_row.row(0).begin());
      }
      nn::Tape st;
      const nn::Var w = st.input(w_value);
      const nn::Var e_r = st.input(std::move(e_row));
      const nn::Var h = st.input(gather_rows(entities, slot.heads));
      const nn::Var t = st.input(gather_rows(entities, slot.tails));
      const nn::Var n = st.input(gather_rows(entities, slot.negs));

      const nn::Var head_projected = st.add_rowvec(st.matmul(h, w), e_r);
      const nn::Var f_pos =
          st.sum_cols(st.square(st.sub(head_projected, st.matmul(t, w))));
      const nn::Var f_neg =
          st.sum_cols(st.square(st.sub(head_projected, st.matmul(n, w))));
      const nn::Var loss = st.scale(
          st.reduce_sum(
              st.relu(st.add_scalar(st.sub(f_pos, f_neg), margin))),
          inv_batch);

      slot.loss = static_cast<double>(st.value(loss)(0, 0));
      st.backward(loss);
      slot.gw = grad_or_zero(st, w, w_value.rows(), w_value.cols());
      slot.ge = grad_or_zero(st, e_r, 1, relations.cols());
      slot.gh = grad_or_zero(st, h, slot.heads.size(), entities.cols());
      slot.gt = grad_or_zero(st, t, slot.tails.size(), entities.cols());
      slot.gn = grad_or_zero(st, n, slot.negs.size(), entities.cols());
    }
  });

  // Serial slot-ordered scatter into the parameter accumulators.
  nn::Parameter& entity_param = transr.entity_embedding();
  nn::Parameter& relation_param = transr.relation_embedding();
  double total_loss = 0.0;
  auto scatter_rows = [&](const nn::Tensor& src,
                          const std::vector<std::uint32_t>& ids) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      auto g = src.row(i);
      auto dst = entity_param.grad().row(ids[i]);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += g[c];
      entity_param.mark_row(ids[i]);
    }
  };
  for (const KgSlot& slot : slots) {
    total_loss += slot.loss;
    nn::Parameter& w = transr.projection(slot.relation);
    nn::axpy(1.0f, slot.gw, w.grad());
    w.mark_dense();
    {
      auto g = slot.ge.row(0);
      auto dst = relation_param.grad().row(slot.relation);
      for (std::size_t c = 0; c < dst.size(); ++c) dst[c] += g[c];
      relation_param.mark_row(slot.relation);
    }
    scatter_rows(slot.gh, slot.heads);
    scatter_rows(slot.gt, slot.tails);
    scatter_rows(slot.gn, slot.negs);
  }

  optimizer.step(params, pool_);
  return static_cast<float>(total_loss);
}

}  // namespace ckat::core
