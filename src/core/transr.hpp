// TransR knowledge-graph embedding (Sec. V.A, Eq. 1-2): entities live in
// a d-dimensional space, each relation r has its own k-dimensional space
// and a projection matrix W_r; valid triples satisfy
// W_r e_h + e_r ~ W_r e_t. Trained with the margin-based ranking loss of
// Eq. 2 over corrupted triples.
//
// This component owns the entity/relation embeddings and the per-relation
// projection matrices inside the caller's ParamStore, so CKAT's
// propagation phase and attention refresh share the same tensors.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace ckat::core {

struct TransRConfig {
  std::size_t entity_dim = 64;
  std::size_t relation_dim = 64;
  float margin = 1.0f;
};

/// One knowledge triple in id space (relation ids may include inverses).
struct KgEdge {
  std::uint32_t head = 0;
  std::uint32_t relation = 0;
  std::uint32_t tail = 0;
};

class TransR {
 public:
  TransR(nn::ParamStore& store, std::size_t n_entities,
         std::size_t n_relations, const TransRConfig& config,
         util::Rng& init_rng);

  [[nodiscard]] std::size_t n_entities() const noexcept { return n_entities_; }
  [[nodiscard]] std::size_t n_relations() const noexcept {
    return n_relations_;
  }
  [[nodiscard]] const TransRConfig& config() const noexcept { return config_; }

  [[nodiscard]] nn::Parameter& entity_embedding() noexcept { return *entity_; }
  [[nodiscard]] const nn::Parameter& entity_embedding() const noexcept {
    return *entity_;
  }
  [[nodiscard]] nn::Parameter& relation_embedding() noexcept {
    return *relation_;
  }
  [[nodiscard]] const nn::Parameter& relation_embedding() const noexcept {
    return *relation_;
  }
  /// Projection matrix W_r, shape (entity_dim, relation_dim).
  [[nodiscard]] nn::Parameter& projection(std::uint32_t relation) {
    return *projections_.at(relation);
  }
  [[nodiscard]] const nn::Parameter& projection(std::uint32_t relation) const {
    return *projections_.at(relation);
  }

  /// Plausibility score f_r(h,r,t) = ||W_r e_h + e_r - W_r e_t||^2
  /// (Eq. 1). Lower is more plausible.
  [[nodiscard]] float score(const KgEdge& edge) const;

  /// One margin-loss training step (Eq. 2) on a batch of edges; negative
  /// tails are drawn uniformly. Returns the batch loss. Gradients are
  /// accumulated into the ParamStore and applied by `optimizer`.
  float train_step(std::span<const KgEdge> batch, nn::Optimizer& optimizer,
                   nn::ParamStore& store, util::Rng& rng);

 private:
  std::size_t n_entities_;
  std::size_t n_relations_;
  TransRConfig config_;
  nn::Parameter* entity_ = nullptr;
  nn::Parameter* relation_ = nullptr;
  std::vector<nn::Parameter*> projections_;
};

}  // namespace ckat::core
