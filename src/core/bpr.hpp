// Bayesian Personalized Ranking sampling (Eq. 12): uniform sampling of
// observed (user, positive item) interactions, each paired with one
// sampled unobserved negative item (Sec. VI.A).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/interactions.hpp"
#include "util/rng.hpp"

namespace ckat::core {

struct BprTriple {
  std::uint32_t user = 0;
  std::uint32_t positive = 0;
  std::uint32_t negative = 0;
};

class BprSampler {
 public:
  explicit BprSampler(const graph::InteractionSet& train);

  /// Samples `batch_size` (u, i+, i-) triples.
  [[nodiscard]] std::vector<BprTriple> sample(std::size_t batch_size,
                                              util::Rng& rng) const;

  [[nodiscard]] std::size_t n_interactions() const noexcept;

  /// Batches per epoch for a given batch size (>= 1).
  [[nodiscard]] std::size_t batches_per_epoch(std::size_t batch_size) const;

 private:
  const graph::InteractionSet& train_;
};

}  // namespace ckat::core
