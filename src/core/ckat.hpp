// CKAT: Collaborative Knowledge-aware graph ATtention network (Sec. V).
//
// Architecture (Fig. 6a):
//   1. Embedding layer -- TransR over the CKG (Eq. 1-2).
//   2. Knowledge-aware attentive embedding propagation (Eq. 3-9):
//      L stacked layers; each aggregates attention-weighted neighbor
//      messages (fixed coefficients recomputed from TransR parameters
//      between epochs) and transforms with a concat or sum aggregator
//      (Eq. 6-7).
//   3. Prediction layer -- layer-wise concatenation of representations
//      and inner-product scoring (Eq. 10-11).
// Training alternates BPR steps on the CF part (Eq. 12) with TransR
// margin steps on the KG part, optimizing Eq. 13.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/attention.hpp"
#include "core/bpr.hpp"
#include "core/trainer.hpp"
#include "core/transr.hpp"
#include "eval/recommender.hpp"
#include "graph/ckg.hpp"
#include "nn/optim.hpp"
#include "nn/parameter.hpp"
#include "nn/serialize.hpp"
#include "nn/tape.hpp"

namespace ckat::core {

enum class Aggregator { kConcat, kSum };

struct CkatConfig {
  std::size_t embedding_dim = 64;             // Sec. VI.D
  std::vector<std::size_t> layer_dims = {64, 32, 16};  // depth L = 3
  Aggregator aggregator = Aggregator::kConcat;
  bool use_attention = true;  // Table IV ablation switch

  float learning_rate = 0.01f;
  float l2_coefficient = 1e-5f;
  float dropout = 0.1f;
  float transr_margin = 1.0f;

  std::size_t cf_batch_size = 2048;
  std::size_t kg_batch_size = 4096;

  /// Minibatched training engine (DESIGN.md section 16). train_threads:
  /// worker threads for the slot fan-out and the sparse Adam step; 0
  /// resolves CKAT_TRAIN_THREADS (default 1). Any value produces
  /// bit-identical parameters -- the slot partition and every
  /// cross-slot reduction are thread-count independent. train_batch:
  /// BPR pairs sampled per CF step; 0 resolves CKAT_TRAIN_BATCH
  /// (default: cf_batch_size).
  int train_threads = 0;
  std::size_t train_batch = 0;

  int epochs = 25;
  std::uint64_t seed = 7;
  bool verbose = false;

  /// Mirror every triple with an inverse relation (Sec. IV's canonical +
  /// inverse convention). Off = information only flows head -> tail.
  bool inverse_relations = true;
  /// Recompute attention coefficients from the TransR parameters every
  /// N epochs (KGAT schedule: 1). 0 freezes the initial coefficients,
  /// isolating the value of co-training attention with the embeddings.
  int attention_refresh_every = 1;

  /// Fault tolerance. checkpoint_every > 0 makes fit() write a durable
  /// training checkpoint to checkpoint_path after every N epochs (the
  /// previous file is rotated to checkpoint_path + ".prev"). When an
  /// epoch produces a non-finite CF or KG loss, fit() rolls back to the
  /// last good checkpoint, multiplies the learning rate by
  /// rollback_lr_factor and retries, up to max_rollbacks times; with
  /// checkpointing disabled the legacy record-and-continue behaviour is
  /// kept.
  int checkpoint_every = 0;
  std::string checkpoint_path;
  float rollback_lr_factor = 0.5f;
  int max_rollbacks = 3;
};

class CkatModel final : public eval::Recommender {
 public:
  /// `ckg` and `train` must outlive the model.
  CkatModel(const graph::CollaborativeKg& ckg,
            const graph::InteractionSet& train, CkatConfig config);

  [[nodiscard]] std::string name() const override { return "CKAT"; }
  void fit() override;
  void score_items(std::uint32_t user, std::span<float> out) const override;
  /// Batched scoring as one tiled GEMM over e*: the CKG entity layout
  /// keeps item rows contiguous after the user rows, so the item panel
  /// is the representation table itself (no copy). Bit-identical to
  /// score_items (same per-coordinate accumulation order).
  void score_batch(std::span<const std::uint32_t> users,
                   std::span<float> out) const override;
  [[nodiscard]] std::size_t n_users() const override;
  [[nodiscard]] std::size_t n_items() const override;

  /// Final concatenated representations e* for all entities
  /// (available after fit()); rows follow the CKG entity layout.
  [[nodiscard]] const nn::Tensor& final_representations() const;

  /// Width of e* = d0 + sum(layer_dims).
  [[nodiscard]] std::size_t representation_dim() const;

  /// Losses per epoch (CF BPR loss, KG TransR loss) for diagnostics.
  struct EpochStats {
    float cf_loss = 0.0f;
    float kg_loss = 0.0f;
  };
  [[nodiscard]] const std::vector<EpochStats>& history() const noexcept {
    return history_;
  }

  /// Exposes the propagation coefficients (tests/diagnostics).
  [[nodiscard]] const PropagationMatrix& propagation_matrix() const noexcept {
    return propagation_;
  }

  /// Persists all trained parameters to a binary file. The model can be
  /// restored with load() on an identically-configured CkatModel over
  /// the same CKG (mismatches are detected and rejected).
  void save(const std::string& path) const;

  /// Restores parameters saved by save(); the model becomes ready for
  /// scoring without retraining.
  void load(const std::string& path);

  /// Captures the complete training state (parameters, optimizer moments
  /// and step counts, RNG, learning-rate scale) as of `epoch` completed
  /// epochs.
  [[nodiscard]] nn::TrainingCheckpoint make_checkpoint(int epoch) const;

  /// Applies a checkpoint produced by make_checkpoint (or loaded from
  /// disk) on an identically-configured model; the next fit() resumes
  /// from checkpoint.epoch and reproduces the uninterrupted run
  /// bit-exactly. Throws std::runtime_error on any mismatch.
  void restore_checkpoint(const nn::TrainingCheckpoint& checkpoint);

  /// Loads a checkpoint file (written by fit()'s periodic checkpointing)
  /// and restores it; a following fit() continues the interrupted run.
  void resume_from(const std::string& path);

  /// Number of divergence rollbacks the last fit() performed.
  [[nodiscard]] int rollback_count() const noexcept { return rollbacks_; }

  /// Warm start (Sec. VI.F's "fine-tuning must be repeated" limitation):
  /// copies every parameter from `previous` whose entity (matched by
  /// CKG entity name) or weight matrix also exists here, leaving
  /// genuinely new entities at their fresh initialization. The previous
  /// model must share embedding_dim and layer_dims. Call before fit();
  /// far fewer epochs are then needed to recover full quality.
  void warm_start_from(const CkatModel& previous);

  /// Online-refresh warm start (serve/refresh.hpp): resumes from a
  /// CKATCKP2 checkpoint captured on a model over `previous_ckg`, on
  /// this model's *grown* CKG. Entity/relation rows transfer by stable
  /// CKG name bit-exactly — parameter values AND Adam moments — so an
  /// immediately-following refresh_fit continues the optimizer
  /// trajectory; genuinely new entities keep their fresh Xavier rows
  /// and zero moments. Optimizer step counts, RNG state and the
  /// learning-rate scale are restored from the checkpoint.
  ///
  /// Rejects (std::runtime_error, clear message): a checkpoint whose
  /// entity table does not match `previous_ckg`, a checkpoint whose
  /// entity count exceeds this model's vocabulary, or any entity /
  /// relation of `previous_ckg` that is missing here — the stream
  /// contract is append-only, so silent truncation is always a bug.
  void warm_start_from_checkpoint(const nn::TrainingCheckpoint& checkpoint,
                                  const graph::CollaborativeKg& previous_ckg);

  /// Bounded-epoch training pass for online refresh: runs exactly
  /// `epochs` epochs from the current (warm-started) parameters and
  /// re-caches representations. epochs == 0 is valid and just
  /// propagates the transferred embeddings (making cold-start entities
  /// scoreable without any training).
  void refresh_fit(int epochs);

 private:
  /// Builds the propagation stack on a tape and returns the final
  /// concatenated representation Var of shape (n_entities, D*).
  nn::Var propagate(nn::Tape& tape, bool training, util::Rng& dropout_rng);

  void refresh_propagation_matrix();
  float cf_step(util::Rng& rng);
  float kg_step(util::Rng& rng);
  void cache_final_representations();
  void apply_lr_scale(float scale);
  /// Writes the periodic checkpoint (rotating the previous one); write
  /// failures are logged, never fatal to training.
  void write_checkpoint(int epoch);
  /// Tries checkpoint_path then the rotated ".prev" file; returns false
  /// when no usable checkpoint exists.
  bool try_rollback();

  const graph::CollaborativeKg& ckg_;
  const graph::InteractionSet& train_;
  CkatConfig config_;

  graph::Adjacency adjacency_;
  std::vector<KgEdge> kg_edges_;  // all CKG edges (with inverses)

  nn::ParamStore params_;
  std::unique_ptr<TransR> transr_;
  std::vector<nn::Parameter*> layer_weights_;

  std::unique_ptr<nn::AdamOptimizer> cf_optimizer_;
  std::unique_ptr<nn::AdamOptimizer> kg_optimizer_;
  std::unique_ptr<MinibatchTrainer> trainer_;
  std::unique_ptr<BprSampler> sampler_;
  util::Rng rng_;

  PropagationMatrix propagation_;
  nn::Tensor final_representations_;
  bool fitted_ = false;
  std::vector<EpochStats> history_;

  int start_epoch_ = 0;      // set by restore_checkpoint/resume_from
  float lr_scale_ = 1.0f;    // current rollback learning-rate multiplier
  int rollbacks_ = 0;
};

}  // namespace ckat::core
