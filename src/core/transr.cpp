#include "core/transr.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "nn/init.hpp"

namespace ckat::core {

TransR::TransR(nn::ParamStore& store, std::size_t n_entities,
               std::size_t n_relations, const TransRConfig& config,
               util::Rng& init_rng)
    : n_entities_(n_entities), n_relations_(n_relations), config_(config) {
  if (n_entities == 0 || n_relations == 0) {
    throw std::invalid_argument("TransR: empty entity or relation set");
  }
  entity_ = &store.create("transr.entity", n_entities, config.entity_dim);
  relation_ =
      &store.create("transr.relation", n_relations, config.relation_dim);
  nn::xavier_uniform(entity_->value(), init_rng);
  nn::xavier_uniform(relation_->value(), init_rng);
  projections_.reserve(n_relations);
  for (std::size_t r = 0; r < n_relations; ++r) {
    nn::Parameter& w = store.create("transr.W" + std::to_string(r),
                                    config.entity_dim, config.relation_dim);
    nn::xavier_uniform(w.value(), init_rng);
    projections_.push_back(&w);
  }
}

float TransR::score(const KgEdge& edge) const {
  const auto& e = entity_->value();
  const auto& rel = relation_->value();
  const auto& w = projections_.at(edge.relation)->value();
  const std::size_t d = config_.entity_dim;
  const std::size_t k = config_.relation_dim;
  double acc = 0.0;
  for (std::size_t j = 0; j < k; ++j) {
    double ph = 0.0, pt = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      ph += static_cast<double>(e(edge.head, i)) * w(i, j);
      pt += static_cast<double>(e(edge.tail, i)) * w(i, j);
    }
    const double diff = ph + rel(edge.relation, j) - pt;
    acc += diff * diff;
  }
  return static_cast<float>(acc);
}

float TransR::train_step(std::span<const KgEdge> batch,
                         nn::Optimizer& optimizer, nn::ParamStore& store,
                         util::Rng& rng) {
  if (batch.empty()) return 0.0f;

  // Group the batch by relation so each group shares one W_r GEMM.
  std::vector<std::size_t> order(batch.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return batch[a].relation < batch[b].relation;
  });

  nn::Tape tape;
  nn::Var total_loss{};
  std::size_t group_begin = 0;
  while (group_begin < order.size()) {
    const std::uint32_t r = batch[order[group_begin]].relation;
    std::size_t group_end = group_begin;
    std::vector<std::uint32_t> heads, tails, neg_tails;
    while (group_end < order.size() &&
           batch[order[group_end]].relation == r) {
      const KgEdge& edge = batch[order[group_end]];
      heads.push_back(edge.head);
      tails.push_back(edge.tail);
      // Corrupt the tail uniformly (Eq. 2's broken-triple set S').
      neg_tails.push_back(
          static_cast<std::uint32_t>(rng.uniform_index(n_entities_)));
      ++group_end;
    }

    nn::Var w = tape.param(*projections_[r]);
    nn::Var e_r = tape.gather_param(*relation_, {r});  // (1, k)

    auto project = [&](const std::vector<std::uint32_t>& ids) {
      return tape.matmul(tape.gather_param(*entity_, ids), w);
    };
    nn::Var head_projected = tape.add_rowvec(project(heads), e_r);
    nn::Var f_pos =
        tape.sum_cols(tape.square(tape.sub(head_projected, project(tails))));
    nn::Var f_neg = tape.sum_cols(
        tape.square(tape.sub(head_projected, project(neg_tails))));

    // max(0, f_pos + margin - f_neg), summed over the group.
    nn::Var group_loss = tape.reduce_sum(
        tape.relu(tape.add_scalar(tape.sub(f_pos, f_neg), config_.margin)));
    total_loss =
        total_loss.valid() ? tape.add(total_loss, group_loss) : group_loss;
    group_begin = group_end;
  }

  total_loss = tape.scale(total_loss, 1.0f / static_cast<float>(batch.size()));
  const float loss_value = tape.value(total_loss)(0, 0);
  tape.backward(total_loss);
  optimizer.step(store);
  return loss_value;
}

}  // namespace ckat::core
