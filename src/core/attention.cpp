#include "core/attention.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "nn/tensor.hpp"

namespace ckat::core {

std::vector<float> raw_attention_scores(const graph::Adjacency& adjacency,
                                        const TransR& transr) {
  const std::size_t n_edges = adjacency.n_edges();
  std::vector<float> scores(n_edges);

  // Group edges by relation so each group is two GEMMs against W_r.
  std::vector<std::size_t> order(n_edges);
  std::iota(order.begin(), order.end(), 0);
  const auto rels = adjacency.relations();
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rels[a] < rels[b];
  });

  const nn::Tensor& entity = transr.entity_embedding().value();
  const nn::Tensor& relation = transr.relation_embedding().value();
  const std::size_t d = transr.config().entity_dim;
  const std::size_t k = transr.config().relation_dim;

  std::size_t begin = 0;
  while (begin < n_edges) {
    const std::uint32_t r = rels[order[begin]];
    std::size_t end = begin;
    while (end < n_edges && rels[order[end]] == r) ++end;
    const std::size_t group = end - begin;

    nn::Tensor heads(group, d), tails(group, d);
    for (std::size_t i = 0; i < group; ++i) {
      const std::size_t e = order[begin + i];
      auto hrow = entity.row(adjacency.heads()[e]);
      auto trow = entity.row(adjacency.tails()[e]);
      std::copy(hrow.begin(), hrow.end(), heads.row(i).begin());
      std::copy(trow.begin(), trow.end(), tails.row(i).begin());
    }
    const nn::Tensor& w = transr.projection(r).value();
    nn::Tensor head_projected(group, k), tail_projected(group, k);
    nn::gemm(heads, w, head_projected);
    nn::gemm(tails, w, tail_projected);

    for (std::size_t i = 0; i < group; ++i) {
      auto hp = head_projected.row(i);
      auto tp = tail_projected.row(i);
      auto er = relation.row(r);
      float acc = 0.0f;
      for (std::size_t j = 0; j < k; ++j) {
        acc += tp[j] * std::tanh(hp[j] + er[j]);
      }
      scores[order[begin + i]] = acc;
    }
    begin = end;
  }
  return scores;
}

namespace {

PropagationMatrix coefficients_to_matrix(const graph::Adjacency& adjacency,
                                         std::span<const float> coefficients) {
  PropagationMatrix m;
  m.forward = nn::csr_from_coo(adjacency.n_entities(), adjacency.n_entities(),
                               adjacency.heads(), adjacency.tails(),
                               coefficients);
  m.backward = m.forward.transposed();
  return m;
}

}  // namespace

PropagationMatrix build_attention_matrix(const graph::Adjacency& adjacency,
                                         const TransR& transr) {
  std::vector<float> scores = raw_attention_scores(adjacency, transr);

  // Per-head softmax (Eq. 5); edges are already sorted by head.
  const auto offsets = adjacency.offsets();
  for (std::size_t h = 0; h + 1 < offsets.size(); ++h) {
    const std::int64_t begin = offsets[h];
    const std::int64_t end = offsets[h + 1];
    if (begin == end) continue;
    float max_score = -std::numeric_limits<float>::infinity();
    for (std::int64_t e = begin; e < end; ++e) {
      max_score = std::max(max_score, scores[e]);
    }
    double denominator = 0.0;
    for (std::int64_t e = begin; e < end; ++e) {
      scores[e] = std::exp(scores[e] - max_score);
      denominator += scores[e];
    }
    for (std::int64_t e = begin; e < end; ++e) {
      scores[e] = static_cast<float>(scores[e] / denominator);
    }
  }
  return coefficients_to_matrix(adjacency, scores);
}

PropagationMatrix build_uniform_matrix(const graph::Adjacency& adjacency) {
  std::vector<float> coefficients(adjacency.n_edges());
  const auto offsets = adjacency.offsets();
  for (std::size_t h = 0; h + 1 < offsets.size(); ++h) {
    const std::int64_t begin = offsets[h];
    const std::int64_t end = offsets[h + 1];
    for (std::int64_t e = begin; e < end; ++e) {
      coefficients[e] = 1.0f / static_cast<float>(end - begin);
    }
  }
  return coefficients_to_matrix(adjacency, coefficients);
}

}  // namespace ckat::core
