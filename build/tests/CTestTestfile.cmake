# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/nn_tests[1]_include.cmake")
include("/root/repo/build/tests/graph_tests[1]_include.cmake")
include("/root/repo/build/tests/facility_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/serve_tests[1]_include.cmake")
include("/root/repo/build/tests/baselines_tests[1]_include.cmake")
include("/root/repo/build/tests/eval_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/delivery_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
