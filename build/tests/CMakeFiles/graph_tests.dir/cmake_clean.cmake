file(REMOVE_RECURSE
  "CMakeFiles/graph_tests.dir/graph/adjacency_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/adjacency_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/ckg_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/ckg_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/interactions_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/interactions_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/paths_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/paths_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/triple_store_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/triple_store_test.cpp.o.d"
  "CMakeFiles/graph_tests.dir/graph/vocab_test.cpp.o"
  "CMakeFiles/graph_tests.dir/graph/vocab_test.cpp.o.d"
  "graph_tests"
  "graph_tests.pdb"
  "graph_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
