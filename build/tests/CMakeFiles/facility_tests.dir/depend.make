# Empty dependencies file for facility_tests.
# This may be replaced when dependencies are built.
