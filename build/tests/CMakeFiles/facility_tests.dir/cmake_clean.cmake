file(REMOVE_RECURSE
  "CMakeFiles/facility_tests.dir/facility/dataset_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/dataset_test.cpp.o.d"
  "CMakeFiles/facility_tests.dir/facility/export_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/export_test.cpp.o.d"
  "CMakeFiles/facility_tests.dir/facility/model_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/model_test.cpp.o.d"
  "CMakeFiles/facility_tests.dir/facility/multi_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/multi_test.cpp.o.d"
  "CMakeFiles/facility_tests.dir/facility/trace_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/trace_test.cpp.o.d"
  "CMakeFiles/facility_tests.dir/facility/users_test.cpp.o"
  "CMakeFiles/facility_tests.dir/facility/users_test.cpp.o.d"
  "facility_tests"
  "facility_tests.pdb"
  "facility_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
