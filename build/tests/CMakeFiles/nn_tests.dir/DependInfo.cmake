
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/checkpoint_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/checkpoint_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/checkpoint_test.cpp.o.d"
  "/root/repo/tests/nn/init_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/init_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/init_test.cpp.o.d"
  "/root/repo/tests/nn/kernels_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/kernels_test.cpp.o.d"
  "/root/repo/tests/nn/optim_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/optim_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/optim_test.cpp.o.d"
  "/root/repo/tests/nn/serialize_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o.d"
  "/root/repo/tests/nn/tape_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/tape_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/tape_test.cpp.o.d"
  "/root/repo/tests/nn/tensor_test.cpp" "tests/CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o" "gcc" "tests/CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ckat_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ckat_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/delivery/CMakeFiles/ckat_delivery.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ckat_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ckat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ckat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ckat_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
