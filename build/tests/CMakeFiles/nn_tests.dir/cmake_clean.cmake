file(REMOVE_RECURSE
  "CMakeFiles/nn_tests.dir/nn/checkpoint_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/checkpoint_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/init_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/init_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/kernels_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/kernels_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/optim_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/optim_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/serialize_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/tape_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/tape_test.cpp.o.d"
  "CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o"
  "CMakeFiles/nn_tests.dir/nn/tensor_test.cpp.o.d"
  "nn_tests"
  "nn_tests.pdb"
  "nn_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
