file(REMOVE_RECURSE
  "CMakeFiles/delivery_tests.dir/delivery/cache_test.cpp.o"
  "CMakeFiles/delivery_tests.dir/delivery/cache_test.cpp.o.d"
  "CMakeFiles/delivery_tests.dir/delivery/prefetch_test.cpp.o"
  "CMakeFiles/delivery_tests.dir/delivery/prefetch_test.cpp.o.d"
  "delivery_tests"
  "delivery_tests.pdb"
  "delivery_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
