# Empty compiler generated dependencies file for delivery_tests.
# This may be replaced when dependencies are built.
