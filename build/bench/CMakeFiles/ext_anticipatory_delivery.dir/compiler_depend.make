# Empty compiler generated dependencies file for ext_anticipatory_delivery.
# This may be replaced when dependencies are built.
