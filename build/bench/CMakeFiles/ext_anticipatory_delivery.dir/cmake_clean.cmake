file(REMOVE_RECURSE
  "CMakeFiles/ext_anticipatory_delivery.dir/ext_anticipatory_delivery.cpp.o"
  "CMakeFiles/ext_anticipatory_delivery.dir/ext_anticipatory_delivery.cpp.o.d"
  "ext_anticipatory_delivery"
  "ext_anticipatory_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_anticipatory_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
