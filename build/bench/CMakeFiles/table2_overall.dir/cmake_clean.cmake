file(REMOVE_RECURSE
  "CMakeFiles/table2_overall.dir/table2_overall.cpp.o"
  "CMakeFiles/table2_overall.dir/table2_overall.cpp.o.d"
  "table2_overall"
  "table2_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
