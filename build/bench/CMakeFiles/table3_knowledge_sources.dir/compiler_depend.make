# Empty compiler generated dependencies file for table3_knowledge_sources.
# This may be replaced when dependencies are built.
