file(REMOVE_RECURSE
  "CMakeFiles/table3_knowledge_sources.dir/table3_knowledge_sources.cpp.o"
  "CMakeFiles/table3_knowledge_sources.dir/table3_knowledge_sources.cpp.o.d"
  "table3_knowledge_sources"
  "table3_knowledge_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_knowledge_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
