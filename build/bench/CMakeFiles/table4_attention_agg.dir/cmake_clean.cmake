file(REMOVE_RECURSE
  "CMakeFiles/table4_attention_agg.dir/table4_attention_agg.cpp.o"
  "CMakeFiles/table4_attention_agg.dir/table4_attention_agg.cpp.o.d"
  "table4_attention_agg"
  "table4_attention_agg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_attention_agg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
