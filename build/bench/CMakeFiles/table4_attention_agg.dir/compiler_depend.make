# Empty compiler generated dependencies file for table4_attention_agg.
# This may be replaced when dependencies are built.
