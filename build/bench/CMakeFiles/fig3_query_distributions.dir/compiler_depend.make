# Empty compiler generated dependencies file for fig3_query_distributions.
# This may be replaced when dependencies are built.
