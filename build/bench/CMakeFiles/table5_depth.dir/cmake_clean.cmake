file(REMOVE_RECURSE
  "CMakeFiles/table5_depth.dir/table5_depth.cpp.o"
  "CMakeFiles/table5_depth.dir/table5_depth.cpp.o.d"
  "table5_depth"
  "table5_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
