# Empty dependencies file for table5_depth.
# This may be replaced when dependencies are built.
