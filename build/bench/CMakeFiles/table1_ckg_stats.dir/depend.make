# Empty dependencies file for table1_ckg_stats.
# This may be replaced when dependencies are built.
