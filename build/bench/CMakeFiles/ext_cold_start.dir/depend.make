# Empty dependencies file for ext_cold_start.
# This may be replaced when dependencies are built.
