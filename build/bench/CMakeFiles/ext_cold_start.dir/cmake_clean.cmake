file(REMOVE_RECURSE
  "CMakeFiles/ext_cold_start.dir/ext_cold_start.cpp.o"
  "CMakeFiles/ext_cold_start.dir/ext_cold_start.cpp.o.d"
  "ext_cold_start"
  "ext_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
