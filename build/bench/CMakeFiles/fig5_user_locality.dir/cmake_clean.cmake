file(REMOVE_RECURSE
  "CMakeFiles/fig5_user_locality.dir/fig5_user_locality.cpp.o"
  "CMakeFiles/fig5_user_locality.dir/fig5_user_locality.cpp.o.d"
  "fig5_user_locality"
  "fig5_user_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_user_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
