# Empty compiler generated dependencies file for fig5_user_locality.
# This may be replaced when dependencies are built.
