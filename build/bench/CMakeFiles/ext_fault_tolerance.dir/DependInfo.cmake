
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ext_fault_tolerance.cpp" "bench/CMakeFiles/ext_fault_tolerance.dir/ext_fault_tolerance.cpp.o" "gcc" "bench/CMakeFiles/ext_fault_tolerance.dir/ext_fault_tolerance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ckat_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ckat_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/serve/CMakeFiles/ckat_serve.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ckat_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ckat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ckat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
