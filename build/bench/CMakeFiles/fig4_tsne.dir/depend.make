# Empty dependencies file for fig4_tsne.
# This may be replaced when dependencies are built.
