file(REMOVE_RECURSE
  "CMakeFiles/fig4_tsne.dir/fig4_tsne.cpp.o"
  "CMakeFiles/fig4_tsne.dir/fig4_tsne.cpp.o.d"
  "fig4_tsne"
  "fig4_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
