# Empty dependencies file for custom_facility.
# This may be replaced when dependencies are built.
