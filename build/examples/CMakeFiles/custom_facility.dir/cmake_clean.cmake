file(REMOVE_RECURSE
  "CMakeFiles/custom_facility.dir/custom_facility.cpp.o"
  "CMakeFiles/custom_facility.dir/custom_facility.cpp.o.d"
  "custom_facility"
  "custom_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
