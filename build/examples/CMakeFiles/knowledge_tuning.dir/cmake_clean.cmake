file(REMOVE_RECURSE
  "CMakeFiles/knowledge_tuning.dir/knowledge_tuning.cpp.o"
  "CMakeFiles/knowledge_tuning.dir/knowledge_tuning.cpp.o.d"
  "knowledge_tuning"
  "knowledge_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knowledge_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
