# Empty compiler generated dependencies file for knowledge_tuning.
# This may be replaced when dependencies are built.
