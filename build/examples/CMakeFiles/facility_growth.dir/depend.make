# Empty dependencies file for facility_growth.
# This may be replaced when dependencies are built.
