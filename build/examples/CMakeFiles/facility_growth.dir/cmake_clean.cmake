file(REMOVE_RECURSE
  "CMakeFiles/facility_growth.dir/facility_growth.cpp.o"
  "CMakeFiles/facility_growth.dir/facility_growth.cpp.o.d"
  "facility_growth"
  "facility_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
