# Empty dependencies file for ooi_discovery.
# This may be replaced when dependencies are built.
