file(REMOVE_RECURSE
  "CMakeFiles/ooi_discovery.dir/ooi_discovery.cpp.o"
  "CMakeFiles/ooi_discovery.dir/ooi_discovery.cpp.o.d"
  "ooi_discovery"
  "ooi_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooi_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
