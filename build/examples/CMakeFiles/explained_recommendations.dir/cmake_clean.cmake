file(REMOVE_RECURSE
  "CMakeFiles/explained_recommendations.dir/explained_recommendations.cpp.o"
  "CMakeFiles/explained_recommendations.dir/explained_recommendations.cpp.o.d"
  "explained_recommendations"
  "explained_recommendations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explained_recommendations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
