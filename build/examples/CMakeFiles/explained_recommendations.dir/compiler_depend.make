# Empty compiler generated dependencies file for explained_recommendations.
# This may be replaced when dependencies are built.
