file(REMOVE_RECURSE
  "libckat_util.a"
)
