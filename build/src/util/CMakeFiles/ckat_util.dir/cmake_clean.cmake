file(REMOVE_RECURSE
  "CMakeFiles/ckat_util.dir/cli.cpp.o"
  "CMakeFiles/ckat_util.dir/cli.cpp.o.d"
  "CMakeFiles/ckat_util.dir/csv.cpp.o"
  "CMakeFiles/ckat_util.dir/csv.cpp.o.d"
  "CMakeFiles/ckat_util.dir/fault.cpp.o"
  "CMakeFiles/ckat_util.dir/fault.cpp.o.d"
  "CMakeFiles/ckat_util.dir/logging.cpp.o"
  "CMakeFiles/ckat_util.dir/logging.cpp.o.d"
  "CMakeFiles/ckat_util.dir/rng.cpp.o"
  "CMakeFiles/ckat_util.dir/rng.cpp.o.d"
  "CMakeFiles/ckat_util.dir/table.cpp.o"
  "CMakeFiles/ckat_util.dir/table.cpp.o.d"
  "CMakeFiles/ckat_util.dir/timer.cpp.o"
  "CMakeFiles/ckat_util.dir/timer.cpp.o.d"
  "libckat_util.a"
  "libckat_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
