# Empty dependencies file for ckat_util.
# This may be replaced when dependencies are built.
