# Empty dependencies file for ckat_baselines.
# This may be replaced when dependencies are built.
