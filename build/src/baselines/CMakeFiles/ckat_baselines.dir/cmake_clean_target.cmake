file(REMOVE_RECURSE
  "libckat_baselines.a"
)
