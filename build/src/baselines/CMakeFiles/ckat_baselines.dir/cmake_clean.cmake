file(REMOVE_RECURSE
  "CMakeFiles/ckat_baselines.dir/bprmf.cpp.o"
  "CMakeFiles/ckat_baselines.dir/bprmf.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/cfkg.cpp.o"
  "CMakeFiles/ckat_baselines.dir/cfkg.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/cke.cpp.o"
  "CMakeFiles/ckat_baselines.dir/cke.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/common.cpp.o"
  "CMakeFiles/ckat_baselines.dir/common.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/fm.cpp.o"
  "CMakeFiles/ckat_baselines.dir/fm.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/kgcn.cpp.o"
  "CMakeFiles/ckat_baselines.dir/kgcn.cpp.o.d"
  "CMakeFiles/ckat_baselines.dir/ripplenet.cpp.o"
  "CMakeFiles/ckat_baselines.dir/ripplenet.cpp.o.d"
  "libckat_baselines.a"
  "libckat_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
