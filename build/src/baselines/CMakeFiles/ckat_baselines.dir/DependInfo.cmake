
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/bprmf.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/bprmf.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/bprmf.cpp.o.d"
  "/root/repo/src/baselines/cfkg.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/cfkg.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/cfkg.cpp.o.d"
  "/root/repo/src/baselines/cke.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/cke.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/cke.cpp.o.d"
  "/root/repo/src/baselines/common.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/common.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/common.cpp.o.d"
  "/root/repo/src/baselines/fm.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/fm.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/fm.cpp.o.d"
  "/root/repo/src/baselines/kgcn.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/kgcn.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/kgcn.cpp.o.d"
  "/root/repo/src/baselines/ripplenet.cpp" "src/baselines/CMakeFiles/ckat_baselines.dir/ripplenet.cpp.o" "gcc" "src/baselines/CMakeFiles/ckat_baselines.dir/ripplenet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ckat_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/ckat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
