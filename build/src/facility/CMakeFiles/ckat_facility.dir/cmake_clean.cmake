file(REMOVE_RECURSE
  "CMakeFiles/ckat_facility.dir/dataset.cpp.o"
  "CMakeFiles/ckat_facility.dir/dataset.cpp.o.d"
  "CMakeFiles/ckat_facility.dir/export.cpp.o"
  "CMakeFiles/ckat_facility.dir/export.cpp.o.d"
  "CMakeFiles/ckat_facility.dir/model.cpp.o"
  "CMakeFiles/ckat_facility.dir/model.cpp.o.d"
  "CMakeFiles/ckat_facility.dir/multi.cpp.o"
  "CMakeFiles/ckat_facility.dir/multi.cpp.o.d"
  "CMakeFiles/ckat_facility.dir/trace.cpp.o"
  "CMakeFiles/ckat_facility.dir/trace.cpp.o.d"
  "CMakeFiles/ckat_facility.dir/users.cpp.o"
  "CMakeFiles/ckat_facility.dir/users.cpp.o.d"
  "libckat_facility.a"
  "libckat_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
