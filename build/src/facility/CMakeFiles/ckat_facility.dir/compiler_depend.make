# Empty compiler generated dependencies file for ckat_facility.
# This may be replaced when dependencies are built.
