file(REMOVE_RECURSE
  "libckat_facility.a"
)
