
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/facility/dataset.cpp" "src/facility/CMakeFiles/ckat_facility.dir/dataset.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/dataset.cpp.o.d"
  "/root/repo/src/facility/export.cpp" "src/facility/CMakeFiles/ckat_facility.dir/export.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/export.cpp.o.d"
  "/root/repo/src/facility/model.cpp" "src/facility/CMakeFiles/ckat_facility.dir/model.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/model.cpp.o.d"
  "/root/repo/src/facility/multi.cpp" "src/facility/CMakeFiles/ckat_facility.dir/multi.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/multi.cpp.o.d"
  "/root/repo/src/facility/trace.cpp" "src/facility/CMakeFiles/ckat_facility.dir/trace.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/trace.cpp.o.d"
  "/root/repo/src/facility/users.cpp" "src/facility/CMakeFiles/ckat_facility.dir/users.cpp.o" "gcc" "src/facility/CMakeFiles/ckat_facility.dir/users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
