file(REMOVE_RECURSE
  "libckat_nn.a"
)
