file(REMOVE_RECURSE
  "CMakeFiles/ckat_nn.dir/init.cpp.o"
  "CMakeFiles/ckat_nn.dir/init.cpp.o.d"
  "CMakeFiles/ckat_nn.dir/kernels.cpp.o"
  "CMakeFiles/ckat_nn.dir/kernels.cpp.o.d"
  "CMakeFiles/ckat_nn.dir/optim.cpp.o"
  "CMakeFiles/ckat_nn.dir/optim.cpp.o.d"
  "CMakeFiles/ckat_nn.dir/serialize.cpp.o"
  "CMakeFiles/ckat_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/ckat_nn.dir/tape.cpp.o"
  "CMakeFiles/ckat_nn.dir/tape.cpp.o.d"
  "CMakeFiles/ckat_nn.dir/tensor.cpp.o"
  "CMakeFiles/ckat_nn.dir/tensor.cpp.o.d"
  "libckat_nn.a"
  "libckat_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
