# Empty dependencies file for ckat_nn.
# This may be replaced when dependencies are built.
