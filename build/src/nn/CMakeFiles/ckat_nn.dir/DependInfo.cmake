
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/ckat_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/kernels.cpp" "src/nn/CMakeFiles/ckat_nn.dir/kernels.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/kernels.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/ckat_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/ckat_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tape.cpp" "src/nn/CMakeFiles/ckat_nn.dir/tape.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/tape.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ckat_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ckat_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
