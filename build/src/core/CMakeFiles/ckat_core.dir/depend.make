# Empty dependencies file for ckat_core.
# This may be replaced when dependencies are built.
