file(REMOVE_RECURSE
  "CMakeFiles/ckat_core.dir/attention.cpp.o"
  "CMakeFiles/ckat_core.dir/attention.cpp.o.d"
  "CMakeFiles/ckat_core.dir/bpr.cpp.o"
  "CMakeFiles/ckat_core.dir/bpr.cpp.o.d"
  "CMakeFiles/ckat_core.dir/ckat.cpp.o"
  "CMakeFiles/ckat_core.dir/ckat.cpp.o.d"
  "CMakeFiles/ckat_core.dir/transr.cpp.o"
  "CMakeFiles/ckat_core.dir/transr.cpp.o.d"
  "libckat_core.a"
  "libckat_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
