file(REMOVE_RECURSE
  "libckat_core.a"
)
