# Empty dependencies file for ckat_serve.
# This may be replaced when dependencies are built.
