file(REMOVE_RECURSE
  "CMakeFiles/ckat_serve.dir/popularity.cpp.o"
  "CMakeFiles/ckat_serve.dir/popularity.cpp.o.d"
  "CMakeFiles/ckat_serve.dir/resilient.cpp.o"
  "CMakeFiles/ckat_serve.dir/resilient.cpp.o.d"
  "libckat_serve.a"
  "libckat_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
