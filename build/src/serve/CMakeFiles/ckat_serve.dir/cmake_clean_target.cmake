file(REMOVE_RECURSE
  "libckat_serve.a"
)
