
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serve/popularity.cpp" "src/serve/CMakeFiles/ckat_serve.dir/popularity.cpp.o" "gcc" "src/serve/CMakeFiles/ckat_serve.dir/popularity.cpp.o.d"
  "/root/repo/src/serve/resilient.cpp" "src/serve/CMakeFiles/ckat_serve.dir/resilient.cpp.o" "gcc" "src/serve/CMakeFiles/ckat_serve.dir/resilient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ckat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
