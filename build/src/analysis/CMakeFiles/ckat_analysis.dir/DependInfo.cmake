
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/pattern_similarity.cpp" "src/analysis/CMakeFiles/ckat_analysis.dir/pattern_similarity.cpp.o" "gcc" "src/analysis/CMakeFiles/ckat_analysis.dir/pattern_similarity.cpp.o.d"
  "/root/repo/src/analysis/trace_stats.cpp" "src/analysis/CMakeFiles/ckat_analysis.dir/trace_stats.cpp.o" "gcc" "src/analysis/CMakeFiles/ckat_analysis.dir/trace_stats.cpp.o.d"
  "/root/repo/src/analysis/tsne.cpp" "src/analysis/CMakeFiles/ckat_analysis.dir/tsne.cpp.o" "gcc" "src/analysis/CMakeFiles/ckat_analysis.dir/tsne.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/facility/CMakeFiles/ckat_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ckat_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
