file(REMOVE_RECURSE
  "libckat_analysis.a"
)
