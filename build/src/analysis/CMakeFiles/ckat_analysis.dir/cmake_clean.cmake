file(REMOVE_RECURSE
  "CMakeFiles/ckat_analysis.dir/pattern_similarity.cpp.o"
  "CMakeFiles/ckat_analysis.dir/pattern_similarity.cpp.o.d"
  "CMakeFiles/ckat_analysis.dir/trace_stats.cpp.o"
  "CMakeFiles/ckat_analysis.dir/trace_stats.cpp.o.d"
  "CMakeFiles/ckat_analysis.dir/tsne.cpp.o"
  "CMakeFiles/ckat_analysis.dir/tsne.cpp.o.d"
  "libckat_analysis.a"
  "libckat_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
