# Empty compiler generated dependencies file for ckat_analysis.
# This may be replaced when dependencies are built.
