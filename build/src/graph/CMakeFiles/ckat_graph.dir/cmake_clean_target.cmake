file(REMOVE_RECURSE
  "libckat_graph.a"
)
