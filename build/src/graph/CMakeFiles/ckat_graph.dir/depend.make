# Empty dependencies file for ckat_graph.
# This may be replaced when dependencies are built.
