file(REMOVE_RECURSE
  "CMakeFiles/ckat_graph.dir/adjacency.cpp.o"
  "CMakeFiles/ckat_graph.dir/adjacency.cpp.o.d"
  "CMakeFiles/ckat_graph.dir/ckg.cpp.o"
  "CMakeFiles/ckat_graph.dir/ckg.cpp.o.d"
  "CMakeFiles/ckat_graph.dir/interactions.cpp.o"
  "CMakeFiles/ckat_graph.dir/interactions.cpp.o.d"
  "CMakeFiles/ckat_graph.dir/paths.cpp.o"
  "CMakeFiles/ckat_graph.dir/paths.cpp.o.d"
  "CMakeFiles/ckat_graph.dir/triple_store.cpp.o"
  "CMakeFiles/ckat_graph.dir/triple_store.cpp.o.d"
  "CMakeFiles/ckat_graph.dir/vocab.cpp.o"
  "CMakeFiles/ckat_graph.dir/vocab.cpp.o.d"
  "libckat_graph.a"
  "libckat_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
