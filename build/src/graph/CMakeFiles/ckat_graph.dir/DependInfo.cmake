
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/adjacency.cpp" "src/graph/CMakeFiles/ckat_graph.dir/adjacency.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/adjacency.cpp.o.d"
  "/root/repo/src/graph/ckg.cpp" "src/graph/CMakeFiles/ckat_graph.dir/ckg.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/ckg.cpp.o.d"
  "/root/repo/src/graph/interactions.cpp" "src/graph/CMakeFiles/ckat_graph.dir/interactions.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/interactions.cpp.o.d"
  "/root/repo/src/graph/paths.cpp" "src/graph/CMakeFiles/ckat_graph.dir/paths.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/paths.cpp.o.d"
  "/root/repo/src/graph/triple_store.cpp" "src/graph/CMakeFiles/ckat_graph.dir/triple_store.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/triple_store.cpp.o.d"
  "/root/repo/src/graph/vocab.cpp" "src/graph/CMakeFiles/ckat_graph.dir/vocab.cpp.o" "gcc" "src/graph/CMakeFiles/ckat_graph.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
