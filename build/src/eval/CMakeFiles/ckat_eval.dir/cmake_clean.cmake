file(REMOVE_RECURSE
  "CMakeFiles/ckat_eval.dir/evaluator.cpp.o"
  "CMakeFiles/ckat_eval.dir/evaluator.cpp.o.d"
  "CMakeFiles/ckat_eval.dir/grid_search.cpp.o"
  "CMakeFiles/ckat_eval.dir/grid_search.cpp.o.d"
  "CMakeFiles/ckat_eval.dir/metrics.cpp.o"
  "CMakeFiles/ckat_eval.dir/metrics.cpp.o.d"
  "libckat_eval.a"
  "libckat_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
