file(REMOVE_RECURSE
  "libckat_eval.a"
)
