# Empty dependencies file for ckat_eval.
# This may be replaced when dependencies are built.
