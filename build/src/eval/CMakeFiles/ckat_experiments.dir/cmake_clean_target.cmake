file(REMOVE_RECURSE
  "libckat_experiments.a"
)
