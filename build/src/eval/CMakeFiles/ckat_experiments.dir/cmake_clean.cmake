file(REMOVE_RECURSE
  "CMakeFiles/ckat_experiments.dir/experiments.cpp.o"
  "CMakeFiles/ckat_experiments.dir/experiments.cpp.o.d"
  "libckat_experiments.a"
  "libckat_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
