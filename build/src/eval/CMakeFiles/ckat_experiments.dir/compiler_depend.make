# Empty compiler generated dependencies file for ckat_experiments.
# This may be replaced when dependencies are built.
