# Empty dependencies file for ckat_delivery.
# This may be replaced when dependencies are built.
