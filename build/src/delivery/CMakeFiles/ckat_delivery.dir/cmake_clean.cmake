file(REMOVE_RECURSE
  "CMakeFiles/ckat_delivery.dir/cache.cpp.o"
  "CMakeFiles/ckat_delivery.dir/cache.cpp.o.d"
  "CMakeFiles/ckat_delivery.dir/prefetch.cpp.o"
  "CMakeFiles/ckat_delivery.dir/prefetch.cpp.o.d"
  "libckat_delivery.a"
  "libckat_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckat_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
