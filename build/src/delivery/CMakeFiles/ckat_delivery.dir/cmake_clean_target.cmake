file(REMOVE_RECURSE
  "libckat_delivery.a"
)
