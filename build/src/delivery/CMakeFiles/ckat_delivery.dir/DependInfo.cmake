
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/delivery/cache.cpp" "src/delivery/CMakeFiles/ckat_delivery.dir/cache.cpp.o" "gcc" "src/delivery/CMakeFiles/ckat_delivery.dir/cache.cpp.o.d"
  "/root/repo/src/delivery/prefetch.cpp" "src/delivery/CMakeFiles/ckat_delivery.dir/prefetch.cpp.o" "gcc" "src/delivery/CMakeFiles/ckat_delivery.dir/prefetch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ckat_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/facility/CMakeFiles/ckat_facility.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ckat_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckat_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
